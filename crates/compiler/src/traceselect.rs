//! Fisher-style trace selection (trace scheduling's "trace selection" phase,
//! as used by Hwu & Chang for instruction-cache layout).
//!
//! Traces are grown greedily from the hottest unselected block, forward along
//! the most likely successor edge and backward along the most likely
//! predecessor edge, while the transition probability stays at or above a
//! threshold and the next block is unselected and in the same function.

use std::collections::HashMap;

use fetchmech_isa::{BlockId, Program};

use crate::profile::Profile;

/// One selected trace: a sequence of blocks expected to execute sequentially.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Trace {
    /// Blocks in layout order.
    pub blocks: Vec<BlockId>,
    /// Profile weight of the seed block (used to order traces).
    pub weight: u64,
}

/// Configuration for trace selection.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TraceSelectConfig {
    /// Minimum transition probability to extend a trace (Fisher used values
    /// around 0.5–0.7; the default follows Hwu & Chang's 0.6).
    pub threshold: f64,
    /// Maximum trace length in blocks (guards pathological growth).
    pub max_blocks: usize,
}

impl Default for TraceSelectConfig {
    fn default() -> Self {
        Self {
            threshold: 0.6,
            max_blocks: 64,
        }
    }
}

/// Selects traces covering every block of `program`.
///
/// Every block appears in exactly one trace; blocks the profile never saw
/// become singleton traces with zero weight (laid out last).
#[must_use]
pub fn select_traces(
    program: &Program,
    profile: &Profile,
    config: &TraceSelectConfig,
) -> Vec<Trace> {
    let n = program.num_blocks();
    let mut selected = vec![false; n];

    // Most-likely predecessor map: for backward growth we need, per block,
    // the predecessor edges and their weights.
    let mut pred_edges: HashMap<BlockId, Vec<(BlockId, f64)>> = HashMap::new();
    for b in program.blocks() {
        for (succ, w) in profile.edge_weights(program, b.id) {
            pred_edges.entry(succ).or_default().push((b.id, w));
        }
    }

    // Seeds in descending profile weight (stable on block id for ties).
    let mut seeds: Vec<BlockId> = (0..n as u32).map(BlockId).collect();
    seeds.sort_by_key(|&b| (std::cmp::Reverse(profile.block_count(b)), b.0));

    let mut traces = Vec::new();
    for seed in seeds {
        if selected[seed.0 as usize] {
            continue;
        }
        selected[seed.0 as usize] = true;
        let seed_func = program.block(seed).func;
        let mut blocks = vec![seed];

        // Grow forward from the tail.
        loop {
            if blocks.len() >= config.max_blocks {
                break;
            }
            let tail = *blocks.last().expect("nonempty");
            let edges = profile.edge_weights(program, tail);
            let total: f64 = edges.iter().map(|(_, w)| w).sum();
            let Some(&(succ, w)) = edges.iter().max_by(|a, b| a.1.total_cmp(&b.1)) else {
                break;
            };
            if total <= 0.0
                || w / total < config.threshold
                || selected[succ.0 as usize]
                || program.block(succ).func != seed_func
            {
                break;
            }
            selected[succ.0 as usize] = true;
            blocks.push(succ);
        }

        // Grow backward from the head.
        loop {
            if blocks.len() >= config.max_blocks {
                break;
            }
            let head = blocks[0];
            let Some(preds) = pred_edges.get(&head) else {
                break;
            };
            let Some(&(pred, w)) = preds.iter().max_by(|a, b| a.1.total_cmp(&b.1)) else {
                break;
            };
            // The predecessor joins the trace only if `head` is also the
            // predecessor's most likely successor (mutual-best, per Fisher).
            let pred_edges_fwd = profile.edge_weights(program, pred);
            let pred_total: f64 = pred_edges_fwd.iter().map(|(_, w)| w).sum();
            let best_fwd = pred_edges_fwd
                .iter()
                .max_by(|a, b| a.1.total_cmp(&b.1))
                .map(|&(s, _)| s);
            if w <= 0.0
                || pred_total <= 0.0
                || best_fwd != Some(head)
                || w / pred_total < config.threshold
                || selected[pred.0 as usize]
                || program.block(pred).func != seed_func
            {
                break;
            }
            selected[pred.0 as usize] = true;
            blocks.insert(0, pred);
        }

        let weight = blocks
            .iter()
            .map(|&b| profile.block_count(b))
            .max()
            .unwrap_or(0);
        traces.push(Trace { blocks, weight });
    }
    crate::hooks::check_traces(program, &traces);
    traces
}

#[cfg(test)]
mod tests {
    use super::*;
    use fetchmech_workloads::{suite, InputId, Workload, WorkloadSpec};

    fn profiled() -> (Workload, Profile) {
        let mut s = WorkloadSpec::base_int("tsel-unit", 21);
        s.funcs = 4;
        let w = Workload::generate(s);
        let p = Profile::collect(&w, &InputId::PROFILE, 20_000);
        (w, p)
    }

    #[test]
    fn traces_partition_all_blocks() {
        let (w, p) = profiled();
        let traces = select_traces(&w.program, &p, &TraceSelectConfig::default());
        let mut seen = vec![false; w.program.num_blocks()];
        for t in &traces {
            for &b in &t.blocks {
                assert!(!seen[b.0 as usize], "block {b} appears twice");
                seen[b.0 as usize] = true;
            }
        }
        assert!(seen.iter().all(|&s| s), "every block must be covered");
    }

    #[test]
    fn traces_never_cross_functions() {
        let (w, p) = profiled();
        for t in select_traces(&w.program, &p, &TraceSelectConfig::default()) {
            let func = w.program.block(t.blocks[0]).func;
            for &b in &t.blocks {
                assert_eq!(w.program.block(b).func, func);
            }
        }
    }

    #[test]
    fn consecutive_trace_blocks_are_cfg_successors() {
        let (w, p) = profiled();
        for t in select_traces(&w.program, &p, &TraceSelectConfig::default()) {
            for pair in t.blocks.windows(2) {
                let succs: Vec<_> = w
                    .program
                    .block(pair[0])
                    .terminator
                    .local_successors()
                    .into_iter()
                    .map(|(_, s)| s)
                    .collect();
                assert!(
                    succs.contains(&pair[1]),
                    "{} -> {} is not a CFG edge",
                    pair[0],
                    pair[1]
                );
            }
        }
    }

    #[test]
    fn hot_traces_are_multi_block() {
        let w = suite::benchmark("compress").expect("known");
        let p = Profile::collect(&w, &InputId::PROFILE, 50_000);
        let traces = select_traces(&w.program, &p, &TraceSelectConfig::default());
        let longest = traces
            .iter()
            .map(|t| t.blocks.len())
            .max()
            .expect("nonempty");
        assert!(
            longest >= 3,
            "expected multi-block traces, longest = {longest}"
        );
    }

    #[test]
    fn threshold_one_yields_mostly_singletons() {
        let (w, p) = profiled();
        let strict = TraceSelectConfig {
            threshold: 1.01,
            max_blocks: 64,
        };
        let traces = select_traces(&w.program, &p, &strict);
        assert!(traces.iter().all(|t| t.blocks.len() == 1));
    }
}
