//! Dead-code elimination driven by SSA-value liveness.
//!
//! A value is *live* if some body instruction or terminator reads it, if a
//! `Call`/`Return`/`Halt` point (which conservatively reads all registers)
//! can observe it, or if it feeds a phi whose own value is live (phi
//! transparency). A body instruction whose destination value is dead is
//! removable; removal can kill the uses that kept *earlier* defs alive, so
//! [`dce`] iterates build-SSA → collect → remove to a fixpoint.
//!
//! On fully reachable programs one round of [`dead_inst_sites`] computes
//! exactly the same set as the analysis crate's register-liveness
//! `dead_writes` — two independent algorithms over different lattices — and
//! the translation-validation layer cross-checks the two (the promoted
//! `dataflow.dead-write` rule). Blocks unreachable from their function entry
//! are never touched.

use fetchmech_isa::{BlockId, CfgView, Dominators, Program, Reg};

use crate::ssa::{build_ssa, SsaForm};

/// One removed (or removable) body instruction: block, body index, and the
/// register whose write was dead.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DeadSite {
    /// Containing block.
    pub block: BlockId,
    /// Body-instruction index within the block (in the program the site was
    /// computed against).
    pub inst: usize,
    /// The dead-written register.
    pub reg: Reg,
}

/// Computes per-value liveness for an SSA overlay (phi-transparent
/// fixpoint).
#[must_use]
pub fn value_liveness(form: &SsaForm) -> Vec<bool> {
    let mut live = form.exit_live.clone();
    for v in form.inst_uses.iter().flatten().flatten() {
        live[v.0 as usize] = true;
    }
    for v in form.term_uses.iter().flatten() {
        live[v.0 as usize] = true;
    }
    // Phi transparency: a phi's arms are read only if the phi's own value
    // is; iterate because arms may themselves be phis.
    let mut changed = true;
    while changed {
        changed = false;
        for phi in form.phis.iter().flatten() {
            if !live[phi.value.0 as usize] {
                continue;
            }
            for &(_, arg) in &phi.args {
                if !live[arg.0 as usize] {
                    live[arg.0 as usize] = true;
                    changed = true;
                }
            }
            if let Some(arg) = phi.entry_arg {
                if !live[arg.0 as usize] {
                    live[arg.0 as usize] = true;
                    changed = true;
                }
            }
        }
    }
    live
}

/// One round of dead-site collection: body instructions whose destination
/// value is dead, sorted by `(block, inst)`. Unreachable blocks (no SSA
/// overlay) are skipped.
#[must_use]
pub fn dead_inst_sites(program: &Program, form: &SsaForm, dom: &Dominators) -> Vec<DeadSite> {
    let live = value_liveness(form);
    let mut sites = Vec::new();
    for b in 0..program.num_blocks() {
        let block = BlockId(b as u32);
        if dom.idom(block).is_none() {
            continue;
        }
        for (i, inst) in program.block(block).insts.iter().enumerate() {
            let Some(dest) = inst.dest else { continue };
            let Some(value) = form.inst_defs[b][i] else {
                continue;
            };
            if !live[value.0 as usize] {
                sites.push(DeadSite {
                    block,
                    inst: i,
                    reg: dest,
                });
            }
        }
    }
    sites
}

/// The result of running [`dce`]: the edited program and every removed
/// site in the *input* program's coordinates.
#[derive(Debug, Clone)]
pub struct DceResult {
    /// The program with all dead writes removed.
    pub program: Program,
    /// Removed sites, in input-program `(block, body index)` coordinates,
    /// sorted.
    pub removed: Vec<DeadSite>,
    /// Number of build→collect→remove rounds until the fixpoint.
    pub rounds: usize,
}

/// Removes dead body instructions to a fixpoint.
///
/// # Panics
///
/// Panics if the edited program fails re-validation (removal of body
/// instructions cannot break structural invariants).
#[must_use]
pub fn dce(program: &Program) -> DceResult {
    let mut cur = program.clone();
    // Per block: current body index → input-program body index.
    let mut index_map: Vec<Vec<usize>> = program
        .blocks()
        .iter()
        .map(|b| (0..b.insts.len()).collect())
        .collect();
    let mut removed = Vec::new();
    let mut rounds = 0;

    loop {
        let view = CfgView::local(&cur);
        let dom = Dominators::compute(&cur, &view);
        let form = build_ssa(&cur, &view, &dom);
        let sites = dead_inst_sites(&cur, &form, &dom);
        if sites.is_empty() {
            break;
        }
        rounds += 1;
        let mut edit = cur.edit();
        // Remove back-to-front within each block so earlier indices stay
        // valid; `sites` is sorted by (block, inst).
        for site in sites.iter().rev() {
            let bi = site.block.0 as usize;
            edit.insts_mut(site.block).remove(site.inst);
            removed.push(DeadSite {
                block: site.block,
                inst: index_map[bi].remove(site.inst),
                reg: site.reg,
            });
        }
        cur = edit.finish().expect("body removal preserves CFG structure");
    }

    removed.sort_by_key(|s| (s.block.0, s.inst));
    DceResult {
        program: cur,
        removed,
        rounds,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fetchmech_isa::{Inst, OpClass, ProgramBuilder, Terminator};

    /// A block where r1 is written twice before any read: the first write
    /// is dead, and once it goes, the def feeding *it* (r2) dies too.
    fn chain() -> Program {
        let mut b = ProgramBuilder::new();
        let f = b.begin_func();
        let top = b.new_block(f);
        let exit = b.new_block(f);
        let r1 = Reg::int(1);
        let r2 = Reg::int(2);
        let r3 = Reg::int(3);
        // r2 = ...            (only feeds the dead write below, then is
        //                      itself overwritten — halt's read-all sees the
        //                      later def, so this one can cascade away)
        // r1 = r2             (dead: overwritten before any read)
        // r1 = ...            (live: read by the branch)
        // r2 = ...            (live via halt's read-all)
        // r3 = r1             (live via halt's read-all)
        b.push_inst(top, Inst::new(OpClass::IntAlu, Some(r2), [None, None]));
        b.push_inst(top, Inst::new(OpClass::IntAlu, Some(r1), [Some(r2), None]));
        b.push_inst(top, Inst::new(OpClass::IntAlu, Some(r1), [None, None]));
        b.push_inst(top, Inst::new(OpClass::IntAlu, Some(r2), [None, None]));
        b.push_inst(top, Inst::new(OpClass::IntAlu, Some(r3), [Some(r1), None]));
        b.set_cond_branch(top, [Some(r1), None], top, exit);
        b.set_terminator(exit, Terminator::Halt);
        b.set_entry(top);
        b.finish().expect("valid chain")
    }

    #[test]
    fn cascading_dead_writes_are_removed_to_fixpoint() {
        let p = chain();
        let result = dce(&p);
        // Both the dead write and the def that only fed it are gone.
        let sites: Vec<(u32, usize)> = result.removed.iter().map(|s| (s.block.0, s.inst)).collect();
        assert_eq!(sites, vec![(0, 0), (0, 1)]);
        assert_eq!(result.rounds, 2, "the feeder dies only after the write");
        assert_eq!(result.program.block(BlockId(0)).insts.len(), 3);
        // The fixpoint really is dry.
        let view = CfgView::local(&result.program);
        let dom = Dominators::compute(&result.program, &view);
        let form = build_ssa(&result.program, &view, &dom);
        assert!(dead_inst_sites(&result.program, &form, &dom).is_empty());
    }

    #[test]
    fn loop_carried_values_are_not_dead() {
        // r1 defined in the loop body and read on the next iteration via
        // the header phi: removal would be unsound, so nothing is removed.
        let mut b = ProgramBuilder::new();
        let f = b.begin_func();
        let head = b.new_block(f);
        let exit = b.new_block(f);
        let r1 = Reg::int(1);
        let r2 = Reg::int(2);
        // head: r2 = r1; r1 = ...; loop on r2.  exit shadows r1 before the
        // halt, so the loop body's r1 def is live *only* through the header
        // phi's backedge arm — exactly the phi-transparency case.
        b.push_inst(head, Inst::new(OpClass::IntAlu, Some(r2), [Some(r1), None]));
        b.push_inst(head, Inst::new(OpClass::IntAlu, Some(r1), [None, None]));
        b.set_cond_branch(head, [Some(r2), None], head, exit);
        b.push_inst(exit, Inst::new(OpClass::IntAlu, Some(r1), [None, None]));
        b.set_terminator(exit, Terminator::Halt);
        b.set_entry(head);
        let p = b.finish().expect("valid loop");
        let result = dce(&p);
        assert!(result.removed.is_empty(), "loop-carried def must survive");
    }
}
