//! Code reordering: trace layout with branch-sense inversion (§4's
//! profile-driven optimization).
//!
//! Traces are placed function by function in descending weight; within a
//! trace, blocks are sequential. Conditional branches whose *taken* edge
//! leads to the next laid block are inverted so the hot path falls through,
//! which is what removes dynamic taken branches (Table 3) and lengthens the
//! sequential runs every fetch mechanism feeds on (Figure 12).

use std::collections::{HashMap, HashSet};

use fetchmech_isa::{BlockId, Layout, LayoutError, LayoutOptions, PadMode, Program, Terminator};

use crate::profile::Profile;
use crate::traceselect::{select_traces, Trace, TraceSelectConfig};

/// The result of code reordering: the edited program, the block order, and
/// the trace-end set (for the pad-trace optimization).
#[derive(Debug, Clone)]
pub struct Reordered {
    /// Program with inverted branch senses where the layout profits.
    pub program: Program,
    /// Block layout order (a permutation of all blocks).
    pub order: Vec<BlockId>,
    /// Final block of each trace — the only padding points `pad-trace` uses.
    pub trace_ends: HashSet<BlockId>,
    /// Number of conditional branches whose sense was inverted.
    pub inverted_branches: usize,
}

impl Reordered {
    /// Lays out the reordered program with the given cache-block size and no
    /// padding.
    ///
    /// # Errors
    ///
    /// Propagates [`LayoutError`] (cannot occur for an order produced by
    /// [`reorder`]).
    pub fn layout(&self, block_bytes: u64) -> Result<Layout, LayoutError> {
        Layout::new(&self.program, &self.order, LayoutOptions::new(block_bytes))
    }

    /// Lays out with trace-end nop padding (§4.1 `pad-trace`).
    ///
    /// # Errors
    ///
    /// Propagates [`LayoutError`].
    pub fn layout_pad_trace(&self, block_bytes: u64) -> Result<Layout, LayoutError> {
        let opts =
            LayoutOptions::new(block_bytes).with_pad(PadMode::PadTrace(self.trace_ends.clone()));
        Layout::new(&self.program, &self.order, opts)
    }
}

/// Reorders `program` according to `profile`.
///
/// # Panics
///
/// Panics only on internal invariant violations (the edited program failing
/// validation), which would be a bug.
#[must_use]
pub fn reorder(program: &Program, profile: &Profile, config: &TraceSelectConfig) -> Reordered {
    let traces = select_traces(program, profile, config);
    let order = layout_order(program, profile, &traces);
    // Only traces the profile actually saw get padded ends: padding cold
    // singleton traces would inflate code size with nops that buy nothing.
    let trace_ends: HashSet<BlockId> = traces
        .iter()
        .filter(|t| t.weight > 0)
        .map(|t| *t.blocks.last().expect("nonempty trace"))
        .collect();

    // Invert conditional branches whose taken edge goes to the next block.
    let position: HashMap<BlockId, usize> =
        order.iter().enumerate().map(|(i, &b)| (b, i)).collect();
    let mut edits = HashMap::new();
    let mut inverted_branches = 0;
    for block in program.blocks() {
        if let Terminator::CondBranch {
            id,
            srcs,
            taken,
            fall,
            inverted,
        } = block.terminator
        {
            let next = order.get(position[&block.id] + 1).copied();
            if Some(taken) == next && taken != fall {
                edits.insert(
                    block.id,
                    Terminator::CondBranch {
                        id,
                        srcs,
                        taken: fall,
                        fall: taken,
                        inverted: !inverted,
                    },
                );
                inverted_branches += 1;
            }
        }
    }
    let reordered = Reordered {
        program: program
            .with_terminators(&edits)
            .expect("sense inversion preserves program validity"),
        order,
        trace_ends,
        inverted_branches,
    };
    crate::hooks::check_reorder(program, &reordered);
    reordered
}

/// Places traces function-major (functions in original order, for call
/// locality). Within a function, traces are chained Pettis-Hansen style:
/// after placing a trace, the next trace is the one whose head is the most
/// likely successor of the placed trace's tail — turning trace-to-trace
/// transitions into fall-throughs instead of materialized jumps — falling
/// back to the heaviest unplaced trace when the chain breaks.
fn layout_order(program: &Program, profile: &Profile, traces: &[Trace]) -> Vec<BlockId> {
    let mut by_func: Vec<Vec<&Trace>> = vec![Vec::new(); program.num_funcs()];
    for t in traces {
        let f = program.block(t.blocks[0]).func;
        by_func[f.0 as usize].push(t);
    }
    let mut order = Vec::with_capacity(program.num_blocks());
    for mut traces in by_func {
        // Flow order (the natural position of each trace's head) keeps join
        // traces near their predecessors, so trace-to-trace transitions tend
        // to be fall-throughs; the chain step below then pulls the actual
        // successor trace adjacent whenever it can. Weight still breaks ties
        // via the chain preference.
        traces.sort_by_key(|t| t.blocks.iter().map(|b| b.0).min().unwrap_or(u32::MAX));
        let mut placed = vec![false; traces.len()];
        let head_of: HashMap<BlockId, usize> = traces
            .iter()
            .enumerate()
            .map(|(i, t)| (t.blocks[0], i))
            .collect();
        let mut last_tail: Option<BlockId> = None;
        for _ in 0..traces.len() {
            // Prefer the chain successor of the last placed tail.
            let next = last_tail
                .and_then(|tail| {
                    profile
                        .edge_weights(program, tail)
                        .into_iter()
                        .filter(|&(_, w)| w > 0.0)
                        .max_by(|a, b| a.1.total_cmp(&b.1))
                        .map(|(succ, _)| succ)
                })
                .and_then(|succ| head_of.get(&succ).copied())
                .filter(|&i| !placed[i])
                .unwrap_or_else(|| {
                    traces
                        .iter()
                        .enumerate()
                        .position(|(i, _)| !placed[i])
                        .expect("unplaced trace remains")
                });
            placed[next] = true;
            order.extend(traces[next].blocks.iter().copied());
            last_tail = traces[next].blocks.last().copied();
        }
    }
    order
}

#[cfg(test)]
mod tests {
    use super::*;
    use fetchmech_isa::{OpClass, TraceStats};
    use fetchmech_workloads::{suite, InputId, Workload};

    fn setup(name: &str) -> (Workload, Reordered) {
        let w = suite::benchmark(name).expect("known");
        let p = Profile::collect(&w, &InputId::PROFILE, 30_000);
        let r = reorder(&w.program, &p, &TraceSelectConfig::default());
        (w, r)
    }

    #[test]
    fn order_is_a_permutation() {
        let (w, r) = setup("compress");
        let mut seen = vec![false; w.program.num_blocks()];
        for &b in &r.order {
            assert!(!seen[b.0 as usize]);
            seen[b.0 as usize] = true;
        }
        assert!(seen.iter().all(|&s| s));
        // And it actually lays out.
        let layout = r.layout(16).expect("layout");
        assert!(!layout.code().is_empty());
    }

    #[test]
    fn reordering_preserves_semantics() {
        // The projected body-instruction stream (ops and registers of
        // non-control, non-nop instructions) must be identical between the
        // natural and reordered layouts under the same input.
        let (w, r) = setup("compress");
        let natural = Layout::natural(&w.program, LayoutOptions::new(16)).expect("layout");
        let reordered = r.layout(16).expect("layout");
        let reordered_workload = Workload {
            spec: w.spec.clone(),
            program: r.program.clone(),
            behaviors: w.behaviors.clone(),
        };
        let project = |w: &Workload, l: &Layout| -> Vec<_> {
            w.executor(l, InputId::TEST, 40_000)
                .filter(|i| i.ctrl.is_none() && i.op != OpClass::Nop)
                .map(|i| (i.op, i.dest, i.srcs))
                .collect()
        };
        let a = project(&w, &natural);
        let b = project(&reordered_workload, &reordered);
        let n = a.len().min(b.len());
        assert!(n > 10_000, "too little overlap to compare");
        assert_eq!(a[..n], b[..n], "reordering changed program semantics");
    }

    #[test]
    fn reordering_reduces_dynamic_taken_branches() {
        for name in ["compress", "espresso", "li"] {
            let (w, r) = setup(name);
            let natural = Layout::natural(&w.program, LayoutOptions::new(16)).expect("layout");
            let reordered = r.layout(16).expect("layout");
            let rw = Workload {
                spec: w.spec.clone(),
                program: r.program.clone(),
                behaviors: w.behaviors.clone(),
            };
            let rate = |w: &Workload, l: &Layout| {
                let mut stats = TraceStats::new();
                let mut useful = 0u64;
                for i in w.executor(l, InputId::TEST, 60_000) {
                    stats.observe(&i, 16);
                    useful += u64::from(i.ctrl.is_none() && i.op != OpClass::Nop);
                }
                stats.taken_controls as f64 / useful as f64
            };
            let before = rate(&w, &natural);
            let after = rate(&rw, &reordered);
            assert!(
                after < before * 0.95,
                "{name}: taken-branch rate {before:.4} -> {after:.4} (expected >5% reduction)"
            );
        }
    }

    #[test]
    fn inversion_count_is_nonzero_for_branchy_code() {
        let (_, r) = setup("eqntott");
        assert!(r.inverted_branches > 0);
    }

    #[test]
    fn trace_ends_are_trace_tails() {
        let (w, r) = setup("compress");
        // Every trace end must be a block; the count equals the trace count,
        // and each end is the last block of a contiguous run in the order.
        assert!(!r.trace_ends.is_empty());
        for &b in &r.trace_ends {
            assert!((b.0 as usize) < w.program.num_blocks());
        }
    }

    #[test]
    fn pad_trace_layout_aligns_trace_starts() {
        let (_, r) = setup("compress");
        let layout = r.layout_pad_trace(16).expect("layout");
        // After each trace end, the next block starts block-aligned.
        for window in r.order.windows(2) {
            if r.trace_ends.contains(&window[0]) {
                assert_eq!(
                    layout.block_addr(window[1]).byte() % 16,
                    0,
                    "block {} after trace end {} is misaligned",
                    window[1],
                    window[0]
                );
            }
        }
        assert!(layout.stats().pad_nops > 0);
    }
}
