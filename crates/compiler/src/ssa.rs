//! Minimal-SSA overlay construction (and trivial destruction) over
//! [`CfgView`].
//!
//! The instruction set has a fixed 64-register file and the simulator models
//! dataflow, not value semantics, so SSA here is an *overlay*: registers are
//! never renamed in the [`Program`]. Instead [`build_ssa`] assigns every
//! register definition — implicit function-entry values, phi merges, and
//! body-instruction writes — a dense [`SsaValue`], and records which value
//! each body-instruction source, terminator source, and phi argument reads.
//! Destruction is therefore the identity transform ([`SsaForm::destruct`]):
//! dropping the overlay recovers the original program unchanged.
//!
//! Phi placement is minimal SSA via iterated dominance frontiers
//! ([`Dominators::frontiers`]), with two domain-specific twists:
//!
//! * every register has an implicit *entry* definition at each function
//!   entry (values live into a function have no in-ISA def site), and a
//!   function entry with real predecessors — a loop backedge into the
//!   function head — is a merge point between the virtual caller edge and
//!   those preds, so its phis carry an extra [`PhiNode::entry_arg`] arm;
//! * `Call`/`Return`/`Halt` terminators conservatively read every register
//!   (no calling convention exists), recorded per value in
//!   [`SsaForm::exit_live`]. This makes SSA-based liveness agree exactly
//!   with the analysis crate's register-liveness dead-write set.
//!
//! All fields are public: the translation-validation layer's mutation tests
//! corrupt one SSA invariant at a time and assert the well-formedness lint
//! catches exactly that corruption.

use fetchmech_isa::{BlockId, CfgView, Dominators, FuncId, Program, Reg, Terminator};

/// A dense SSA value id (index into [`SsaForm::defs`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct SsaValue(pub u32);

/// Where an SSA value is defined.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SsaDef {
    /// The register's value on entry to `func` (no in-ISA def site).
    Entry {
        /// Function whose entry carries the value.
        func: FuncId,
        /// The register.
        reg: Reg,
    },
    /// A phi merge at the head of `block`.
    Phi {
        /// Block whose head holds the phi.
        block: BlockId,
        /// Index into [`SsaForm::phis`]`[block]`.
        index: usize,
    },
    /// The destination write of body instruction `index` of `block`.
    Inst {
        /// Defining block.
        block: BlockId,
        /// Body-instruction index within the block.
        index: usize,
    },
}

/// A phi merge: one incoming value per predecessor edge.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PhiNode {
    /// The register being merged.
    pub reg: Reg,
    /// The value this phi defines.
    pub value: SsaValue,
    /// Incoming `(predecessor, value)` arms, one per CFG predecessor.
    pub args: Vec<(BlockId, SsaValue)>,
    /// The implicit caller-edge arm, present exactly when the block is a
    /// function entry (the merge of the entry value with loop backedges).
    pub entry_arg: Option<SsaValue>,
}

/// The SSA overlay of a program: per-site value defs and uses.
#[derive(Debug, Clone)]
pub struct SsaForm {
    /// Definition site of every value, indexed by [`SsaValue`].
    pub defs: Vec<SsaDef>,
    /// Phi nodes at each block head, indexed by block.
    pub phis: Vec<Vec<PhiNode>>,
    /// Values read by each body instruction's sources (`[block][inst]`,
    /// one entry per present `src`, in source order).
    pub inst_uses: Vec<Vec<Vec<SsaValue>>>,
    /// Value defined by each body instruction's dest, if any.
    pub inst_defs: Vec<Vec<Option<SsaValue>>>,
    /// Values read by each block's terminator (branch sources).
    pub term_uses: Vec<Vec<SsaValue>>,
    /// Values conservatively read by a `Call`/`Return`/`Halt` terminator
    /// (which read all 64 registers), indexed by [`SsaValue`].
    pub exit_live: Vec<bool>,
}

impl SsaForm {
    /// Number of SSA values.
    #[must_use]
    pub fn num_values(&self) -> usize {
        self.defs.len()
    }

    /// Total number of phi nodes across all blocks.
    #[must_use]
    pub fn num_phis(&self) -> usize {
        self.phis.iter().map(Vec::len).sum()
    }

    /// SSA destruction. Registers are never renamed by construction, so
    /// dropping the overlay *is* out-of-SSA translation: the program the
    /// overlay annotates is already the destructed form. Returns a clone of
    /// `program` so the round-trip shape matches real SSA pipelines.
    #[must_use]
    pub fn destruct(&self, program: &Program) -> Program {
        program.clone()
    }
}

const NUM_REGS: usize = 64;

/// Builds the minimal-SSA overlay of `program`.
///
/// `view` must be [`CfgView::local`] of the same program and `dom` computed
/// from that view. Blocks unreachable from their function entry get no phis
/// and no recorded uses (passes must not transform them).
#[must_use]
pub fn build_ssa(program: &Program, view: &CfgView, dom: &Dominators) -> SsaForm {
    let n = program.num_blocks();
    let df = dom.frontiers(program, view);
    let children = dom.children();

    let mut form = SsaForm {
        defs: Vec::new(),
        phis: vec![Vec::new(); n],
        inst_uses: (0..n)
            .map(|b| vec![Vec::new(); program.block(BlockId(b as u32)).insts.len()])
            .collect(),
        inst_defs: (0..n)
            .map(|b| vec![None; program.block(BlockId(b as u32)).insts.len()])
            .collect(),
        term_uses: vec![Vec::new(); n],
        exit_live: Vec::new(),
    };

    let mut is_entry = vec![false; n];
    for &e in program.func_entries() {
        is_entry[e.0 as usize] = true;
    }

    for (f, &entry) in program.func_entries().iter().enumerate() {
        let func = FuncId(f as u32);
        let rpo = view.reverse_postorder(entry);

        // Phi placement: iterated dominance frontier of each register's def
        // sites (body writes plus the implicit entry def).
        for fi in 0..NUM_REGS {
            let mut work: Vec<BlockId> = vec![entry];
            for &b in &rpo {
                if program
                    .block(b)
                    .insts
                    .iter()
                    .any(|i| i.dest.map(Reg::file_index) == Some(fi))
                {
                    work.push(b);
                }
            }
            let mut has_phi = vec![false; n];
            while let Some(b) = work.pop() {
                for &j in &df[b.0 as usize] {
                    if !has_phi[j.0 as usize] {
                        has_phi[j.0 as usize] = true;
                        let value = SsaValue(form.defs.len() as u32);
                        form.defs.push(SsaDef::Phi {
                            block: j,
                            index: form.phis[j.0 as usize].len(),
                        });
                        form.exit_live.push(false);
                        form.phis[j.0 as usize].push(PhiNode {
                            reg: Reg::from_file_index(fi),
                            value,
                            args: Vec::new(),
                            entry_arg: None,
                        });
                        work.push(j);
                    }
                }
            }
        }

        // Renaming: one entry value per register, then a dominator-tree walk
        // maintaining per-register value stacks.
        let mut stacks: Vec<Vec<SsaValue>> = (0..NUM_REGS)
            .map(|fi| {
                let value = SsaValue(form.defs.len() as u32);
                form.defs.push(SsaDef::Entry {
                    func,
                    reg: Reg::from_file_index(fi),
                });
                form.exit_live.push(false);
                vec![value]
            })
            .collect();

        let mut frames = vec![enter_block(
            program,
            view,
            &mut form,
            &mut stacks,
            &is_entry,
            entry,
        )];
        while let Some(frame) = frames.last_mut() {
            let kids = &children[frame.block.0 as usize];
            if frame.next_child < kids.len() {
                let child = kids[frame.next_child];
                frame.next_child += 1;
                frames.push(enter_block(
                    program,
                    view,
                    &mut form,
                    &mut stacks,
                    &is_entry,
                    child,
                ));
            } else {
                for &fi in frame.pushed.iter().rev() {
                    stacks[fi].pop();
                }
                frames.pop();
            }
        }
    }

    form
}

/// One explicit DFS frame of the renaming walk: the block, the next
/// dominator-tree child to visit, and which register stacks it pushed.
struct Frame {
    block: BlockId,
    next_child: usize,
    pushed: Vec<usize>,
}

/// Processes one block of the renaming walk (phi defs, body uses/defs,
/// terminator reads, successor phi arms) and returns its DFS frame.
fn enter_block(
    program: &Program,
    view: &CfgView,
    form: &mut SsaForm,
    stacks: &mut [Vec<SsaValue>],
    is_entry: &[bool],
    b: BlockId,
) -> Frame {
    let bi = b.0 as usize;
    let mut pushed = Vec::new();

    // Phi defs first; the implicit caller arm of an entry block's phi is
    // the pre-phi stack top (the Entry value).
    for pi in 0..form.phis[bi].len() {
        let (reg, value) = {
            let phi = &form.phis[bi][pi];
            (phi.reg, phi.value)
        };
        let fi = reg.file_index();
        if is_entry[bi] {
            let top = *stacks[fi].last().expect("entry value present");
            form.phis[bi][pi].entry_arg = Some(top);
        }
        stacks[fi].push(value);
        pushed.push(fi);
    }

    // Body: record source values before pushing the dest value, so an
    // instruction reading its own destination register sees the incoming
    // value.
    let block = program.block(b);
    for (i, inst) in block.insts.iter().enumerate() {
        let mut uses = Vec::new();
        for src in inst.srcs.iter().flatten() {
            uses.push(*stacks[src.file_index()].last().expect("value on stack"));
        }
        form.inst_uses[bi][i] = uses;
        if let Some(dest) = inst.dest {
            let value = SsaValue(form.defs.len() as u32);
            form.defs.push(SsaDef::Inst { block: b, index: i });
            form.exit_live.push(false);
            let fi = dest.file_index();
            stacks[fi].push(value);
            pushed.push(fi);
            form.inst_defs[bi][i] = Some(value);
        }
    }

    // Terminator reads. Call/Return/Halt conservatively read every
    // register (mirrors the analysis crate's liveness).
    match block.terminator {
        Terminator::CondBranch { srcs, .. } => {
            for src in srcs.iter().flatten() {
                let v = *stacks[src.file_index()].last().expect("value on stack");
                form.term_uses[bi].push(v);
            }
        }
        Terminator::Call { .. } | Terminator::Return | Terminator::Halt => {
            for stack in stacks.iter() {
                let v = *stack.last().expect("value on stack");
                form.exit_live[v.0 as usize] = true;
            }
        }
        Terminator::FallThrough { .. } | Terminator::Jump { .. } => {}
    }

    // Fill successor phi arms with this block's outgoing values.
    for &s in view.successors(b) {
        for phi in form.phis[s.0 as usize].iter_mut() {
            let v = *stacks[phi.reg.file_index()].last().expect("value on stack");
            phi.args.push((b, v));
        }
    }

    Frame {
        block: b,
        next_child: 0,
        pushed,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fetchmech_isa::{Inst, OpClass, ProgramBuilder};

    /// entry(def r1) → {left(def r1), right} → join(use r1) → loop back or halt.
    fn diamond() -> Program {
        let mut b = ProgramBuilder::new();
        let f = b.begin_func();
        let top = b.new_block(f);
        let left = b.new_block(f);
        let right = b.new_block(f);
        let join = b.new_block(f);
        let exit = b.new_block(f);
        let r1 = Reg::int(1);
        b.push_inst(top, Inst::new(OpClass::IntAlu, Some(r1), [None, None]));
        b.set_cond_branch(top, [Some(r1), None], left, right);
        b.push_inst(left, Inst::new(OpClass::IntAlu, Some(r1), [None, None]));
        b.set_terminator(left, Terminator::Jump { target: join });
        b.set_terminator(right, Terminator::Jump { target: join });
        b.push_inst(
            join,
            Inst::new(OpClass::IntMul, Some(Reg::int(2)), [Some(r1), None]),
        );
        b.set_cond_branch(join, [Some(Reg::int(2)), None], top, exit);
        b.set_terminator(exit, Terminator::Halt);
        b.set_entry(top);
        b.finish().expect("valid diamond")
    }

    #[test]
    fn join_merges_the_two_defs() {
        let p = diamond();
        let view = CfgView::local(&p);
        let dom = Dominators::compute(&p, &view);
        let ssa = build_ssa(&p, &view, &dom);

        // The join block needs a phi for r1 (defs in top and left merge).
        let join_phis = &ssa.phis[3];
        let phi = join_phis
            .iter()
            .find(|ph| ph.reg == Reg::int(1))
            .expect("phi for r1 at the join");
        assert_eq!(phi.args.len(), 2, "one arm per predecessor");
        assert!(phi.entry_arg.is_none(), "join is not a function entry");
        // The two arms carry *different* values (top's def vs left's def).
        let mut vals: Vec<SsaValue> = phi.args.iter().map(|&(_, v)| v).collect();
        vals.dedup();
        assert_eq!(vals.len(), 2);

        // join's multiply reads the phi value.
        assert_eq!(ssa.inst_uses[3][0], vec![phi.value]);
    }

    #[test]
    fn loop_header_entry_gets_entry_arm_phis() {
        let p = diamond();
        let view = CfgView::local(&p);
        let dom = Dominators::compute(&p, &view);
        let ssa = build_ssa(&p, &view, &dom);

        // The backedge join→top makes the function entry a merge: its phis
        // must carry the implicit caller arm.
        let top_phis = &ssa.phis[0];
        assert!(!top_phis.is_empty(), "loop header needs phis");
        for phi in top_phis {
            assert!(phi.entry_arg.is_some(), "entry block phi needs caller arm");
            assert_eq!(phi.args.len(), 1, "one real predecessor (the backedge)");
        }
        // r1's header phi merges the entry value with the loop-carried def.
        let phi = top_phis
            .iter()
            .find(|ph| ph.reg == Reg::int(1))
            .expect("phi for r1 at header");
        assert!(matches!(
            ssa.defs[phi.entry_arg.expect("arm").0 as usize],
            SsaDef::Entry { .. }
        ));
    }

    #[test]
    fn every_use_resolves_and_destruct_is_identity() {
        let p = diamond();
        let view = CfgView::local(&p);
        let dom = Dominators::compute(&p, &view);
        let ssa = build_ssa(&p, &view, &dom);
        for uses in ssa.inst_uses.iter().flatten().flatten() {
            assert!((uses.0 as usize) < ssa.num_values());
        }
        assert_eq!(ssa.destruct(&p), p);
    }
}
