//! Local value numbering with redundancy rewriting.
//!
//! Within each basic block, pure computations (`IntAlu`, `IntMul`, `FpAdd`,
//! `FpMul` with a destination) are value-numbered over `(op, vn(src0),
//! vn(src1), imm)`. When a computation's value was already computed *and
//! some register still holds it*, the instruction is rewritten to a
//! register-to-register copy from that holder (`IntAlu`/`FpAdd` with a
//! single source and zero immediate — the ISA's move idiom). The
//! holder-availability condition is the classic LVN trap: a value that was
//! computed but whose every holder has since been clobbered must *not* be
//! merged, and the translation-validation layer re-derives availability
//! independently to catch exactly that bug.
//!
//! The value-numbering here intentionally mirrors (but does not call) the
//! analysis crate's `local_value_numbering`: two implementations, one
//! cross-check.

use fetchmech_isa::{BlockId, Inst, OpClass, Program, Reg};

/// One rewritten instruction: the site and its before/after forms.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LvnRewrite {
    /// Containing block.
    pub block: BlockId,
    /// Body-instruction index within the block.
    pub inst: usize,
    /// The original (redundant) computation.
    pub before: Inst,
    /// The copy it was rewritten to.
    pub after: Inst,
}

/// The result of running [`lvn`] over every block.
#[derive(Debug, Clone)]
pub struct LvnResult {
    /// The program with redundant computations rewritten to copies.
    pub program: Program,
    /// Every rewrite, sorted by `(block, inst)`.
    pub rewrites: Vec<LvnRewrite>,
}

/// Is this op a pure computation LVN may merge?
#[must_use]
pub fn lvn_pure(op: OpClass) -> bool {
    matches!(
        op,
        OpClass::IntAlu | OpClass::IntMul | OpClass::FpAdd | OpClass::FpMul
    )
}

/// The move idiom for a value class: copies stay in the source's register
/// file so functional-unit pressure is untouched.
#[must_use]
pub fn copy_op(op: OpClass) -> OpClass {
    match op {
        OpClass::FpAdd | OpClass::FpMul => OpClass::FpAdd,
        _ => OpClass::IntAlu,
    }
}

const NUM_REGS: usize = 64;
const FRESH_BASE: u32 = NUM_REGS as u32;

/// Rewrites redundant pure computations in every block of `program`.
///
/// # Panics
///
/// Panics if the edited program fails re-validation (body rewrites cannot
/// break structural invariants).
#[must_use]
pub fn lvn(program: &Program) -> LvnResult {
    let mut edit = program.edit();
    let mut rewrites = Vec::new();

    for b in 0..program.num_blocks() {
        let block = BlockId(b as u32);
        // vn per register: registers start holding distinct unknown values
        // (vn = file index); fresh values number from 64.
        let mut reg_vn: [u32; NUM_REGS] = [0; NUM_REGS];
        for (i, vn) in reg_vn.iter_mut().enumerate() {
            *vn = i as u32;
        }
        let mut next_vn = FRESH_BASE;
        let mut table: Vec<((OpClass, u32, u32, i8), u32)> = Vec::new();

        for (i, inst) in program.block(block).insts.iter().enumerate() {
            let (Some(dest), true) = (inst.dest, lvn_pure(inst.op)) else {
                // Impure or destination-less ops clobber nothing here
                // (loads still write their dest below — handle the dest).
                if let Some(dest) = inst.dest {
                    reg_vn[dest.file_index()] = next_vn;
                    next_vn += 1;
                }
                continue;
            };
            let vn_of = |r: Option<Reg>, regs: &[u32; NUM_REGS]| {
                r.map_or(u32::MAX, |r| regs[r.file_index()])
            };
            let key = (
                inst.op,
                vn_of(inst.srcs[0], &reg_vn),
                vn_of(inst.srcs[1], &reg_vn),
                inst.imm,
            );
            let vn = match table.iter().find(|(k, _)| *k == key) {
                Some(&(_, vn)) => {
                    // Redundant computation — but only rewrite when some
                    // register still holds the value (availability).
                    let holder = reg_vn
                        .iter()
                        .position(|&r| r == vn)
                        .map(Reg::from_file_index);
                    if let Some(holder) = holder {
                        let after = Inst::new(copy_op(inst.op), Some(dest), [Some(holder), None]);
                        edit.insts_mut(block)[i] = after;
                        rewrites.push(LvnRewrite {
                            block,
                            inst: i,
                            before: *inst,
                            after,
                        });
                    }
                    vn
                }
                None => {
                    let vn = next_vn;
                    next_vn += 1;
                    table.push((key, vn));
                    vn
                }
            };
            reg_vn[dest.file_index()] = vn;
        }
    }

    LvnResult {
        program: edit.finish().expect("body rewrites preserve CFG structure"),
        rewrites,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fetchmech_isa::{ProgramBuilder, Terminator};

    fn single_block(insts: Vec<Inst>) -> Program {
        let mut b = ProgramBuilder::new();
        let f = b.begin_func();
        let top = b.new_block(f);
        for i in insts {
            b.push_inst(top, i);
        }
        b.set_terminator(top, Terminator::Halt);
        b.set_entry(top);
        b.finish().expect("valid block")
    }

    #[test]
    fn recomputation_becomes_a_copy_of_the_holder() {
        let ra = Reg::int(4);
        let rb = Reg::int(5);
        let rc = Reg::int(6);
        let rd = Reg::int(7);
        let p = single_block(vec![
            Inst::new(OpClass::IntAlu, Some(ra), [Some(rb), Some(rc)]),
            Inst::new(OpClass::IntAlu, Some(rd), [Some(rb), Some(rc)]),
        ]);
        let result = lvn(&p);
        assert_eq!(result.rewrites.len(), 1);
        let rw = &result.rewrites[0];
        assert_eq!((rw.block, rw.inst), (BlockId(0), 1));
        assert_eq!(
            rw.after,
            Inst::new(OpClass::IntAlu, Some(rd), [Some(ra), None])
        );
        assert_eq!(result.program.block(BlockId(0)).insts[1], rw.after);
    }

    #[test]
    fn clobbered_holder_blocks_the_merge() {
        let ra = Reg::int(4);
        let rb = Reg::int(5);
        let rc = Reg::int(6);
        let rd = Reg::int(7);
        let p = single_block(vec![
            Inst::new(OpClass::IntAlu, Some(ra), [Some(rb), Some(rc)]),
            // Clobber the only holder of the value...
            Inst::new(OpClass::IntMul, Some(ra), [Some(rd), None]),
            // ...so this recomputation must NOT become a copy.
            Inst::new(OpClass::IntAlu, Some(rd), [Some(rb), Some(rc)]),
        ]);
        let result = lvn(&p);
        assert!(result.rewrites.is_empty(), "no live holder, no rewrite");
        assert_eq!(result.program, p);
    }

    #[test]
    fn copy_then_recompute_uses_any_live_holder() {
        let ra = Reg::int(4);
        let rb = Reg::int(5);
        let rc = Reg::int(6);
        let rd = Reg::int(7);
        let re = Reg::int(8);
        let p = single_block(vec![
            Inst::new(OpClass::IntAlu, Some(ra), [Some(rb), Some(rc)]),
            // rd = same value (gets rewritten to a copy of ra)...
            Inst::new(OpClass::IntAlu, Some(rd), [Some(rb), Some(rc)]),
            // ...ra clobbered; rd still holds the value...
            Inst::new(OpClass::IntMul, Some(ra), [Some(rb), None]),
            // ...so a third computation copies from rd.
            Inst::new(OpClass::IntAlu, Some(re), [Some(rb), Some(rc)]),
        ]);
        let result = lvn(&p);
        assert_eq!(result.rewrites.len(), 2);
        assert_eq!(
            result.rewrites[1].after,
            Inst::new(OpClass::IntAlu, Some(re), [Some(rd), None])
        );
    }

    #[test]
    fn fp_copies_stay_in_the_fp_file() {
        let fa = Reg::fp(1);
        let fb = Reg::fp(2);
        let fc = Reg::fp(3);
        let p = single_block(vec![
            Inst::new(OpClass::FpMul, Some(fa), [Some(fb), Some(fb)]),
            Inst::new(OpClass::FpMul, Some(fc), [Some(fb), Some(fb)]),
        ]);
        let result = lvn(&p);
        assert_eq!(result.rewrites.len(), 1);
        assert_eq!(result.rewrites[0].after.op, OpClass::FpAdd);
    }
}
