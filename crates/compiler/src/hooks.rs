//! Debug-build verification hooks for compiler artifacts.
//!
//! Mirrors `fetchmech_isa::hooks`: the analysis crate cannot be a dependency
//! of this crate (it depends on us), so [`Profile`]
//! collection, trace selection, and reordering expose process-global hook
//! slots instead. An embedder installs verifiers once; debug builds then
//! verify every produced artifact at its construction site. Release builds
//! skip the calls.

use std::sync::OnceLock;

use fetchmech_isa::Program;

use crate::passes::Optimized;
use crate::profile::Profile;
use crate::reorder::Reordered;
use crate::traceselect::Trace;

/// Verification callback for collected [`Profile`]s.
pub type ProfileHook = fn(&Program, &Profile) -> Result<(), String>;

/// Verification callback for trace-selection output.
pub type TracesHook = fn(&Program, &[Trace]) -> Result<(), String>;

/// Verification callback for reorder output (original program first).
pub type ReorderHook = fn(&Program, &Reordered) -> Result<(), String>;

/// Verification callback for optimization-pipeline output (original program
/// first). Static translation validation only — the hook runs on every
/// `optimize` call, so dynamic trace comparison is left to explicit
/// verification entry points.
pub type OptimizeHook = fn(&Program, &Optimized) -> Result<(), String>;

static PROFILE_HOOK: OnceLock<ProfileHook> = OnceLock::new();
static TRACES_HOOK: OnceLock<TracesHook> = OnceLock::new();
static REORDER_HOOK: OnceLock<ReorderHook> = OnceLock::new();
static OPTIMIZE_HOOK: OnceLock<OptimizeHook> = OnceLock::new();

/// Installs the process-wide profile hook. Returns `false` if one was
/// already installed (the first installation wins).
pub fn install_profile_hook(hook: ProfileHook) -> bool {
    PROFILE_HOOK.set(hook).is_ok()
}

/// Installs the process-wide trace-selection hook. Returns `false` if one
/// was already installed (the first installation wins).
pub fn install_traces_hook(hook: TracesHook) -> bool {
    TRACES_HOOK.set(hook).is_ok()
}

/// Installs the process-wide reorder hook. Returns `false` if one was
/// already installed (the first installation wins).
pub fn install_reorder_hook(hook: ReorderHook) -> bool {
    REORDER_HOOK.set(hook).is_ok()
}

/// Installs the process-wide optimize hook. Returns `false` if one was
/// already installed (the first installation wins).
pub fn install_optimize_hook(hook: OptimizeHook) -> bool {
    OPTIMIZE_HOOK.set(hook).is_ok()
}

/// Runs the installed profile hook, if any, in debug builds.
///
/// # Panics
///
/// Panics with the hook's report if the profile is rejected.
pub(crate) fn check_profile(program: &Program, profile: &Profile) {
    if cfg!(debug_assertions) {
        if let Some(hook) = PROFILE_HOOK.get() {
            if let Err(report) = hook(program, profile) {
                panic!("profile verification hook rejected the profile:\n{report}");
            }
        }
    }
}

/// Runs the installed trace-selection hook, if any, in debug builds.
///
/// # Panics
///
/// Panics with the hook's report if the traces are rejected.
pub(crate) fn check_traces(program: &Program, traces: &[Trace]) {
    if cfg!(debug_assertions) {
        if let Some(hook) = TRACES_HOOK.get() {
            if let Err(report) = hook(program, traces) {
                panic!("trace-selection verification hook rejected the traces:\n{report}");
            }
        }
    }
}

/// Runs the installed reorder hook, if any, in debug builds.
///
/// # Panics
///
/// Panics with the hook's report if the reorder output is rejected.
pub(crate) fn check_reorder(original: &Program, reordered: &Reordered) {
    if cfg!(debug_assertions) {
        if let Some(hook) = REORDER_HOOK.get() {
            if let Err(report) = hook(original, reordered) {
                panic!("reorder verification hook rejected the transform:\n{report}");
            }
        }
    }
}

/// Runs the installed optimize hook, if any, in debug builds.
///
/// # Panics
///
/// Panics with the hook's report if the pipeline output is rejected.
pub(crate) fn check_optimize(original: &Program, optimized: &Optimized) {
    if cfg!(debug_assertions) {
        if let Some(hook) = OPTIMIZE_HOOK.get() {
            if let Err(report) = hook(original, optimized) {
                panic!("optimize verification hook rejected the pipeline output:\n{report}");
            }
        }
    }
}
