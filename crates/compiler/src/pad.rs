//! The §4.1 nop-padding optimizations: `pad-all` and `pad-trace`.
//!
//! `pad-all` pads every basic block to the next cache-block boundary with no
//! profile information; `pad-trace` pads only trace ends (requiring the
//! reordering pass). Table 4 reports the resulting code expansion; Figure 13
//! their effect on the *sequential* fetch scheme.

use fetchmech_isa::{Layout, LayoutError, LayoutOptions, PadMode, Program};

use crate::reorder::Reordered;

/// Lays out `program` in natural order with every block padded to a cache
/// block boundary (`pad-all`).
///
/// # Errors
///
/// Propagates [`LayoutError`] (cannot occur for natural order).
pub fn layout_pad_all(program: &Program, block_bytes: u64) -> Result<Layout, LayoutError> {
    Layout::natural(
        program,
        LayoutOptions::new(block_bytes).with_pad(PadMode::PadAll),
    )
}

/// Code-expansion report for one padding configuration (a Table 4 row cell).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PadReport {
    /// Instructions before padding.
    pub base_insts: usize,
    /// Padding nops inserted.
    pub pad_nops: usize,
    /// Nops as a percentage of the unpadded code size.
    pub pad_pct: f64,
}

impl PadReport {
    /// Extracts the report from a laid-out program.
    #[must_use]
    pub fn from_layout(layout: &Layout) -> Self {
        let stats = layout.stats();
        Self {
            base_insts: stats.total_insts - stats.pad_nops,
            pad_nops: stats.pad_nops,
            pad_pct: stats.pad_pct(),
        }
    }
}

/// Computes Table 4's pair of expansion figures for one benchmark and block
/// size: `(pad-all, pad-trace)`.
///
/// `pad-all` is measured on the natural layout (it needs no profile);
/// `pad-trace` on the reordered layout, as in the paper.
///
/// # Errors
///
/// Propagates [`LayoutError`] from the layout engine.
pub fn expansion(
    program: &Program,
    reordered: &Reordered,
    block_bytes: u64,
) -> Result<(PadReport, PadReport), LayoutError> {
    let all = layout_pad_all(program, block_bytes)?;
    let trace = reordered.layout_pad_trace(block_bytes)?;
    Ok((PadReport::from_layout(&all), PadReport::from_layout(&trace)))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::profile::Profile;
    use crate::reorder::reorder;
    use crate::traceselect::TraceSelectConfig;
    use fetchmech_workloads::{suite, InputId};

    #[test]
    fn pad_all_expansion_grows_with_block_size() {
        let w = suite::benchmark("compress").expect("known");
        let pcts: Vec<f64> = [16, 32, 64]
            .into_iter()
            .map(|bs| {
                PadReport::from_layout(&layout_pad_all(&w.program, bs).expect("layout")).pad_pct
            })
            .collect();
        assert!(pcts[0] < pcts[1] && pcts[1] < pcts[2], "{pcts:?}");
        // Table 4's magnitudes: tens of percent at 16 B, >100% at 64 B.
        assert!(pcts[0] > 10.0, "{pcts:?}");
        assert!(pcts[2] > 100.0, "{pcts:?}");
    }

    #[test]
    fn pad_trace_is_much_cheaper_than_pad_all() {
        let w = suite::benchmark("espresso").expect("known");
        let p = Profile::collect(&w, &InputId::PROFILE, 30_000);
        let r = reorder(&w.program, &p, &TraceSelectConfig::default());
        for bs in [16, 32, 64] {
            let (all, trace) = expansion(&w.program, &r, bs).expect("layouts");
            assert!(
                trace.pad_pct < all.pad_pct / 2.0,
                "block {bs}: pad-trace {:.1}% vs pad-all {:.1}%",
                trace.pad_pct,
                all.pad_pct
            );
        }
    }

    #[test]
    fn reports_are_internally_consistent() {
        let w = suite::benchmark("li").expect("known");
        let layout = layout_pad_all(&w.program, 32).expect("layout");
        let rep = PadReport::from_layout(&layout);
        assert_eq!(rep.base_insts + rep.pad_nops, layout.code().len());
        let expect = 100.0 * rep.pad_nops as f64 / rep.base_insts as f64;
        assert!((rep.pad_pct - expect).abs() < 1e-9);
    }
}
