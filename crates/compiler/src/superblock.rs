//! Superblock formation by tail duplication (Hwu et al.'s superblock
//! construction, applied here for fetch-geometry rather than scheduling).
//!
//! Trace selection gives hot multi-block paths, but side entrances into the
//! middle of a trace keep the trace from being one long sequential run: a
//! join forces the layout to either break the run or accept cold control
//! transfers into it. Tail duplication removes the joins: from the first
//! side-entered block onward, the trace tail is *duplicated*, every side
//! edge is redirected into the duplicate chain, and the original tail keeps
//! exactly one predecessor — its trace predecessor. The hot path becomes a
//! superblock (single entry, multiple exits) that branch straightening and
//! the layout can then turn into a long fall-through run.
//!
//! Duplicated conditional branches get *fresh* branch ids; the returned
//! `rel_branch` map ties each new id back to the branch it was copied from
//! so behavior models and profiles can be aliased (see
//! `BehaviorMap::with_origin`).

use std::collections::{HashMap, HashSet};

use fetchmech_isa::{BlockId, BranchId, CfgView, Program, Terminator};

use crate::profile::Profile;
use crate::traceselect::{select_traces, TraceSelectConfig};

/// The result of superblock formation.
#[derive(Debug, Clone)]
pub struct SuperblockResult {
    /// Program with duplicated trace tails appended as new blocks.
    pub program: Program,
    /// Block layout order: function-major, traces and duplicate chains
    /// chained by likely-successor weight so hot transitions fall through
    /// (a permutation of all blocks, originals and copies).
    pub order: Vec<BlockId>,
    /// Per block of the new program, the block of the *input* program it
    /// corresponds to (identity for originals).
    pub rel_block: Vec<BlockId>,
    /// Per branch id of the new program, the input-program branch it was
    /// copied from (identity for originals).
    pub rel_branch: Vec<BranchId>,
    /// Every `(duplicate, original)` pair, in creation order.
    pub duplicated: Vec<(BlockId, BlockId)>,
    /// Number of traces that actually had a tail duplicated.
    pub formed: usize,
}

/// Redirects every edge of `term` that targets `from` to `to`.
fn retarget(term: &mut Terminator, from: BlockId, to: BlockId) {
    match term {
        Terminator::FallThrough { next } | Terminator::Jump { target: next } => {
            if *next == from {
                *next = to;
            }
        }
        Terminator::CondBranch { taken, fall, .. } => {
            if *taken == from {
                *taken = to;
            }
            if *fall == from {
                *fall = to;
            }
        }
        // Callees are function entries and entries are never duplicated;
        // only the return-to (call fall-through) edge can point at a tail.
        Terminator::Call { return_to, .. } => {
            if *return_to == from {
                *return_to = to;
            }
        }
        Terminator::Return | Terminator::Halt => {}
    }
}

/// Forms superblocks: selects traces on `profile`, then tail-duplicates
/// every side-entered trace suffix, within a code-growth budget of
/// `growth_limit` (fraction of the program's static instruction count).
///
/// # Panics
///
/// Panics if the edited program fails re-validation (duplication with fresh
/// branch ids cannot break structural invariants).
#[must_use]
pub fn superblock(
    program: &Program,
    profile: &Profile,
    config: &TraceSelectConfig,
    growth_limit: f64,
) -> SuperblockResult {
    let traces = select_traces(program, profile, config);
    let view = CfgView::local(program);
    let entries: HashSet<BlockId> = program.func_entries().iter().copied().collect();

    let n0 = program.num_blocks();
    let mut edit = program.edit();
    let mut rel_block: Vec<BlockId> = (0..n0 as u32).map(BlockId).collect();
    let mut rel_branch: Vec<BranchId> = (0..program.num_branches()).map(BranchId).collect();
    let mut duplicated = Vec::new();
    let mut formed = 0usize;
    // Duplicate chain per trace index, for the order below.
    let mut chains: Vec<Vec<BlockId>> = vec![Vec::new(); traces.len()];

    #[allow(
        clippy::cast_precision_loss,
        clippy::cast_possible_truncation,
        clippy::cast_sign_loss
    )]
    let budget = (growth_limit.max(0.0) * program.static_inst_upper_bound() as f64) as usize;
    let mut spent = 0usize;

    // Hottest traces get the budget first.
    let mut by_weight: Vec<usize> = (0..traces.len())
        .filter(|&i| traces[i].weight > 0 && traces[i].blocks.len() >= 2)
        .collect();
    by_weight.sort_by_key(|&i| (std::cmp::Reverse(traces[i].weight), i));

    for ti in by_weight {
        let t = &traces[ti].blocks;
        // The duplicable suffix ends at the first function entry (entries
        // carry the implicit caller edge and cannot be duplicated).
        let end = (1..t.len())
            .find(|&j| entries.contains(&t[j]))
            .unwrap_or(t.len());
        // It starts at the first side-entered block: one with a predecessor
        // other than its trace predecessor.
        let Some(start) =
            (1..end).find(|&j| view.predecessors(t[j]).iter().any(|&p| p != t[j - 1]))
        else {
            continue;
        };

        let cost: usize = t[start..end]
            .iter()
            .map(|&b| program.block(b).insts.len() + 1)
            .sum();
        if spent + cost > budget {
            continue;
        }
        spent += cost;
        formed += 1;

        // Clone the tail blocks, giving duplicated conditional branches
        // fresh ids mapped back to their originals. Terminators are cloned
        // from the *edited* program: an earlier trace may already have
        // redirected this block's edges into its own duplicate chain.
        let mut chain = Vec::with_capacity(end - start);
        for &orig in &t[start..end] {
            let insts = edit.block(orig).insts.clone();
            let func = edit.block(orig).func;
            let mut term = edit.block(orig).terminator;
            if let Terminator::CondBranch { id, .. } = &mut term {
                let from = rel_branch[id.0 as usize];
                *id = edit.alloc_branch();
                debug_assert_eq!(id.0 as usize, rel_branch.len());
                rel_branch.push(from);
            }
            let dup = edit.add_block(func, insts, term);
            debug_assert_eq!(dup.0 as usize, rel_block.len());
            rel_block.push(orig);
            duplicated.push((dup, orig));
            chain.push(dup);
        }

        // Redirect every edge into t[start..end] — except the unique
        // in-trace edge t[j-1] -> t[j] — to the duplicate. This includes
        // edges from the duplicates themselves, which links the chain
        // (dup(t[j-1])'s cloned edge to t[j] becomes dup(t[j-1]) ->
        // dup(t[j])) and keeps duplicate-path rejoins inside the chain.
        for (pos, &orig) in t[start..end].iter().enumerate() {
            let dup = chain[pos];
            let keep = t[pos + start - 1];
            for u in 0..edit.num_blocks() {
                let u = BlockId(u as u32);
                if u == keep {
                    continue;
                }
                let mut term = edit.block(u).terminator;
                retarget(&mut term, orig, dup);
                if term != edit.block(u).terminator {
                    edit.set_terminator(u, term);
                }
            }
        }
        chains[ti] = chain;
    }

    let new_program = edit
        .finish()
        .expect("tail duplication preserves program validity");
    // Alias the input profile onto the duplicated program: copies inherit
    // their origin's counts. This overstates duplicate hotness (flow splits
    // between original and copy) but preserves branch directions, which is
    // all the chaining below needs.
    let new_profile = Profile::from_raw(
        rel_block.iter().map(|&o| profile.block_count(o)).collect(),
        rel_branch
            .iter()
            .map(|&o| profile.branch_counts(o).0)
            .collect(),
        rel_branch
            .iter()
            .map(|&o| profile.branch_counts(o).1)
            .collect(),
    );
    let order = layout_order(&new_program, &new_profile, &traces, &chains, &rel_block);
    let result = SuperblockResult {
        program: new_program,
        order,
        rel_block,
        rel_branch,
        duplicated,
        formed,
    };
    debug_assert_eq!(result.order.len(), result.program.num_blocks());
    result
}

/// Function-major order with likely-successor chaining over layout units.
///
/// Each trace and each duplicate chain is a unit. Within a function, units
/// start in flow order (minimum *origin* block id, so a duplicate chain
/// starts out next to the code it was copied from), then — mirroring
/// `reorder`'s Pettis-Hansen chaining — each placed unit pulls the unplaced
/// unit whose head is the most likely successor of its tail. Without the
/// chain step, unit-to-unit transitions that are `FallThrough` edges in the
/// CFG land non-adjacent and materialize as jump instructions, *adding*
/// taken breaks instead of removing them.
fn layout_order(
    program: &Program,
    profile: &Profile,
    traces: &[crate::traceselect::Trace],
    chains: &[Vec<BlockId>],
    rel_block: &[BlockId],
) -> Vec<BlockId> {
    struct Unit<'a> {
        blocks: &'a [BlockId],
        key: u32,
    }
    let mut by_func: Vec<Vec<Unit>> = (0..program.num_funcs()).map(|_| Vec::new()).collect();
    for (i, t) in traces.iter().enumerate() {
        let f = program.block(t.blocks[0]).func.0 as usize;
        let key = t.blocks.iter().map(|b| b.0).min().unwrap_or(u32::MAX);
        by_func[f].push(Unit {
            blocks: &t.blocks,
            key,
        });
        if !chains[i].is_empty() {
            let key = chains[i]
                .iter()
                .map(|&b| rel_block[b.0 as usize].0)
                .min()
                .unwrap_or(u32::MAX);
            by_func[f].push(Unit {
                blocks: &chains[i],
                key,
            });
        }
    }
    let mut order = Vec::with_capacity(program.num_blocks());
    for mut units in by_func {
        units.sort_by_key(|u| (u.key, u.blocks[0].0));
        let head_of: HashMap<BlockId, usize> = units
            .iter()
            .enumerate()
            .map(|(i, u)| (u.blocks[0], i))
            .collect();
        let mut placed = vec![false; units.len()];
        let mut last_tail: Option<BlockId> = None;
        for _ in 0..units.len() {
            // Prefer the unit headed by the most likely successor of the
            // last placed tail; fall back to flow order when the chain
            // breaks (exit edge, successor already placed, or cold tail).
            let next = last_tail
                .and_then(|tail| {
                    profile
                        .edge_weights(program, tail)
                        .into_iter()
                        .filter(|&(_, w)| w > 0.0)
                        .max_by(|a, b| a.1.total_cmp(&b.1))
                        .map(|(succ, _)| succ)
                })
                .and_then(|succ| head_of.get(&succ).copied())
                .filter(|&i| !placed[i])
                .unwrap_or_else(|| {
                    placed
                        .iter()
                        .position(|&p| !p)
                        .expect("unplaced unit remains")
                });
            placed[next] = true;
            order.extend(units[next].blocks.iter().copied());
            last_tail = units[next].blocks.last().copied();
        }
    }
    order
}

#[cfg(test)]
mod tests {
    use super::*;
    use fetchmech_workloads::{suite, InputId, Workload};

    fn formed(name: &str) -> (Workload, Profile, SuperblockResult) {
        let w = suite::benchmark(name).expect("known");
        let p = Profile::collect(&w, &InputId::PROFILE, 30_000);
        let r = superblock(&w.program, &p, &TraceSelectConfig::default(), 0.25);
        (w, p, r)
    }

    #[test]
    fn duplication_happens_and_maps_are_consistent() {
        let (w, _, r) = formed("compress");
        assert!(r.formed > 0, "compress has side-entered hot traces");
        assert!(r.program.num_blocks() > w.program.num_blocks());
        assert_eq!(r.rel_block.len(), r.program.num_blocks());
        assert_eq!(r.rel_branch.len(), r.program.num_branches() as usize);
        // Originals map to themselves; duplicates map into the input range.
        for b in 0..w.program.num_blocks() {
            assert_eq!(r.rel_block[b], BlockId(b as u32));
        }
        for (dup, orig) in &r.duplicated {
            assert_eq!(r.rel_block[dup.0 as usize], *orig);
            assert_eq!(
                r.program.block(*dup).insts,
                w.program.block(*orig).insts,
                "duplicate body differs from original"
            );
        }
    }

    #[test]
    fn order_is_a_permutation_of_all_blocks() {
        let (_, _, r) = formed("compress");
        let mut seen = vec![false; r.program.num_blocks()];
        for &b in &r.order {
            assert!(!seen[b.0 as usize], "block {b} placed twice");
            seen[b.0 as usize] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn duplicated_tails_have_a_single_predecessor() {
        let (_, _, r) = formed("compress");
        let view = CfgView::local(&r.program);
        let dups: HashSet<BlockId> = r.duplicated.iter().map(|&(d, _)| d).collect();
        for &(dup, orig) in &r.duplicated {
            // The original tail block now has exactly one predecessor (its
            // trace predecessor) unless the chain rejoined it.
            let preds = view.predecessors(orig);
            let outside: Vec<_> = preds.iter().filter(|p| !dups.contains(p)).collect();
            assert!(
                outside.len() <= 1,
                "original {orig} still has side entrances: {outside:?}"
            );
            // Duplicates are reachable: something points at them.
            assert!(
                !view.predecessors(dup).is_empty(),
                "duplicate {dup} is orphaned"
            );
        }
    }

    #[test]
    fn growth_budget_is_respected() {
        let (w, p, _) = formed("compress");
        for limit in [0.0, 0.05, 0.25] {
            let r = superblock(&w.program, &p, &TraceSelectConfig::default(), limit);
            let grown: usize = r
                .duplicated
                .iter()
                .map(|&(_, o)| w.program.block(o).insts.len() + 1)
                .sum();
            #[allow(
                clippy::cast_precision_loss,
                clippy::cast_possible_truncation,
                clippy::cast_sign_loss
            )]
            let budget = (limit * w.program.static_inst_upper_bound() as f64) as usize;
            assert!(grown <= budget, "grew {grown} > budget {budget}");
        }
        let zero = superblock(&w.program, &p, &TraceSelectConfig::default(), 0.0);
        assert_eq!(zero.formed, 0);
        assert_eq!(zero.program, w.program);
    }
}
