//! The optimization pass pipeline: an ordered sequence of verified program
//! transforms.
//!
//! Each pass application records everything the translation-validation
//! layer (the analysis crate) needs to check it *statically*: the before and
//! after programs, block/branch relation maps, the layout orders, and a
//! pass-specific edit summary declaring exactly what changed. The pipeline
//! also threads *cumulative* origin maps back to the original program so
//! branch behavior models can be aliased onto duplicated branches
//! (`BehaviorMap::with_origin`) and profiles can be remapped between passes.
//!
//! Passes:
//! - [`PassKind::Lvn`] — local value numbering ([`mod@crate::lvn`]).
//! - [`PassKind::Dce`] — dead-code elimination ([`mod@crate::dce`]).
//! - [`PassKind::Superblock`] — tail duplication ([`mod@crate::superblock`]).
//! - [`PassKind::Straighten`] — branch-sense inversion so hot successors
//!   fall through in the current layout order.

use std::collections::HashMap;

use fetchmech_isa::{BlockId, BranchId, Program, Terminator};

use crate::dce::{dce, DeadSite};
use crate::lvn::{lvn, LvnRewrite};
use crate::profile::Profile;
use crate::superblock::superblock;
use crate::traceselect::TraceSelectConfig;

/// One pass of the pipeline.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PassKind {
    /// Local value numbering: redundant pure computations become copies.
    Lvn,
    /// Dead-code elimination: writes no execution can observe are removed.
    Dce,
    /// Superblock formation: side-entered trace tails are duplicated.
    Superblock,
    /// Branch straightening: branch senses inverted so the hot successor
    /// falls through in layout order.
    Straighten,
}

impl PassKind {
    /// Every pass, in the default pipeline order.
    pub const ALL: [Self; 4] = [Self::Lvn, Self::Dce, Self::Superblock, Self::Straighten];

    /// Stable CLI name.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            Self::Lvn => "lvn",
            Self::Dce => "dce",
            Self::Superblock => "superblock",
            Self::Straighten => "straighten",
        }
    }

    /// Parses a CLI name.
    #[must_use]
    pub fn parse(name: &str) -> Option<Self> {
        Self::ALL.into_iter().find(|p| p.name() == name)
    }
}

impl std::fmt::Display for PassKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Pipeline configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct OptimizeConfig {
    /// Trace selection parameters for superblock formation.
    pub trace: TraceSelectConfig,
    /// Code-growth budget for tail duplication, as a fraction of the
    /// program's static instruction count.
    pub growth_limit: f64,
}

impl Default for OptimizeConfig {
    fn default() -> Self {
        Self {
            trace: TraceSelectConfig::default(),
            growth_limit: 0.25,
        }
    }
}

/// The pass-specific edit summary: a *declaration* of what the pass did,
/// which the validation layer checks against the before/after programs.
#[derive(Debug, Clone)]
pub enum PassEdit {
    /// LVN rewrote these instructions to copies.
    Lvn {
        /// Every rewrite, sorted by `(block, inst)`.
        rewrites: Vec<LvnRewrite>,
    },
    /// DCE removed these body instructions (before-program coordinates).
    Dce {
        /// Removed sites, sorted by `(block, inst)`.
        removed: Vec<DeadSite>,
        /// Rounds to the fixpoint.
        rounds: usize,
    },
    /// Superblock formation duplicated these blocks.
    Superblock {
        /// `(duplicate, original)` pairs in creation order.
        duplicated: Vec<(BlockId, BlockId)>,
        /// Number of traces that had a tail duplicated.
        formed: usize,
    },
    /// Straightening inverted this many branch senses.
    Straighten {
        /// Number of inverted conditional branches.
        inverted: usize,
    },
}

/// One recorded pass application: everything needed to validate the step.
#[derive(Debug, Clone)]
pub struct PassApplication {
    /// Which pass ran.
    pub pass: PassKind,
    /// The program the pass consumed.
    pub before: Program,
    /// The program the pass produced.
    pub after: Program,
    /// Per after-program block, the before-program block it corresponds to.
    pub rel_block: Vec<BlockId>,
    /// Per after-program branch, the before-program branch it corresponds
    /// to.
    pub rel_branch: Vec<BranchId>,
    /// Per before-program block, the *original* (pipeline input) block it
    /// descends from.
    pub block_origin_before: Vec<BlockId>,
    /// Per after-program block, the original block it descends from.
    pub block_origin_after: Vec<BlockId>,
    /// Per before-program branch, the original branch it descends from.
    pub branch_origin_before: Vec<BranchId>,
    /// Per after-program branch, the original branch it descends from.
    pub branch_origin_after: Vec<BranchId>,
    /// Layout order before the pass.
    pub order_before: Vec<BlockId>,
    /// Layout order after the pass.
    pub order_after: Vec<BlockId>,
    /// The pass's declared edit.
    pub edit: PassEdit,
}

/// The pipeline result.
#[derive(Debug, Clone)]
pub struct Optimized {
    /// The final program.
    pub program: Program,
    /// The final layout order (a permutation of the final program's blocks).
    pub order: Vec<BlockId>,
    /// Per final block, the original-program block it descends from.
    pub block_origin: Vec<BlockId>,
    /// Per final branch, the original-program branch it descends from.
    pub branch_origin: Vec<BranchId>,
    /// Every pass application, in execution order.
    pub applications: Vec<PassApplication>,
}

fn identity_blocks(n: usize) -> Vec<BlockId> {
    (0..n as u32).map(BlockId).collect()
}

fn identity_branches(n: u32) -> Vec<BranchId> {
    (0..n).map(BranchId).collect()
}

/// Remaps `profile` (original-program dimensions) onto `cur` through the
/// cumulative origin maps: every descendant block or branch inherits its
/// original's counts. Duplicates double-count flow, which is fine for the
/// heuristic uses (trace seeding) this feeds.
fn remap_profile(profile: &Profile, cum_block: &[BlockId], cum_branch: &[BranchId]) -> Profile {
    let block_count = cum_block.iter().map(|&o| profile.block_count(o)).collect();
    let (taken, total) = cum_branch.iter().map(|&o| profile.branch_counts(o)).unzip();
    Profile::from_raw(block_count, taken, total)
}

/// Inverts conditional branches whose *taken* edge leads to the next block
/// in `order`, so the hot path falls through. Returns the edited program
/// and the inversion count. (The same transform `reorder` applies, exposed
/// as a standalone pipeline pass.)
fn straighten(program: &Program, order: &[BlockId]) -> (Program, usize) {
    let position: HashMap<BlockId, usize> =
        order.iter().enumerate().map(|(i, &b)| (b, i)).collect();
    let mut edits = HashMap::new();
    let mut count = 0usize;
    for block in program.blocks() {
        if let Terminator::CondBranch {
            id,
            srcs,
            taken,
            fall,
            inverted,
        } = block.terminator
        {
            let next = order.get(position[&block.id] + 1).copied();
            if Some(taken) == next && taken != fall {
                edits.insert(
                    block.id,
                    Terminator::CondBranch {
                        id,
                        srcs,
                        taken: fall,
                        fall: taken,
                        inverted: !inverted,
                    },
                );
                count += 1;
            }
        }
    }
    let edited = program
        .with_terminators(&edits)
        .expect("sense inversion preserves program validity");
    (edited, count)
}

/// Runs `passes` in order over `program`, recording every application.
///
/// `profile` must have the *original* program's dimensions; it is remapped
/// through the cumulative origin maps for passes that consume it. The final
/// result is handed to the optimize verification hook (debug builds).
///
/// # Panics
///
/// Panics if an intermediate program fails re-validation (a pass bug), or
/// if the installed verification hook rejects the result.
#[must_use]
pub fn optimize(
    program: &Program,
    profile: &Profile,
    passes: &[PassKind],
    config: &OptimizeConfig,
) -> Optimized {
    assert_eq!(
        profile.num_blocks(),
        program.num_blocks(),
        "profile dimensions must match the input program"
    );
    let mut cur = program.clone();
    let mut order = identity_blocks(program.num_blocks());
    let mut cum_block = identity_blocks(program.num_blocks());
    let mut cum_branch = identity_branches(program.num_branches());
    let mut applications = Vec::with_capacity(passes.len());

    for &pass in passes {
        let before = cur.clone();
        let order_before = order.clone();
        let block_origin_before = cum_block.clone();
        let branch_origin_before = cum_branch.clone();

        let (after, rel_block, rel_branch, order_after, edit) = match pass {
            PassKind::Lvn => {
                let r = lvn(&cur);
                (
                    r.program,
                    identity_blocks(before.num_blocks()),
                    identity_branches(before.num_branches()),
                    order.clone(),
                    PassEdit::Lvn {
                        rewrites: r.rewrites,
                    },
                )
            }
            PassKind::Dce => {
                let r = dce(&cur);
                (
                    r.program,
                    identity_blocks(before.num_blocks()),
                    identity_branches(before.num_branches()),
                    order.clone(),
                    PassEdit::Dce {
                        removed: r.removed,
                        rounds: r.rounds,
                    },
                )
            }
            PassKind::Superblock => {
                let prof = remap_profile(profile, &cum_block, &cum_branch);
                let r = superblock(&cur, &prof, &config.trace, config.growth_limit);
                (
                    r.program,
                    r.rel_block,
                    r.rel_branch,
                    r.order,
                    PassEdit::Superblock {
                        duplicated: r.duplicated,
                        formed: r.formed,
                    },
                )
            }
            PassKind::Straighten => {
                let (p, inverted) = straighten(&cur, &order);
                (
                    p,
                    identity_blocks(before.num_blocks()),
                    identity_branches(before.num_branches()),
                    order.clone(),
                    PassEdit::Straighten { inverted },
                )
            }
        };

        cum_block = rel_block.iter().map(|&b| cum_block[b.0 as usize]).collect();
        let branch_origin_after: Vec<BranchId> = rel_branch
            .iter()
            .map(|&i| branch_origin_before[i.0 as usize])
            .collect();
        applications.push(PassApplication {
            pass,
            before,
            after: after.clone(),
            rel_block,
            rel_branch,
            block_origin_before,
            block_origin_after: cum_block.clone(),
            branch_origin_before,
            branch_origin_after: branch_origin_after.clone(),
            order_before,
            order_after: order_after.clone(),
            edit,
        });
        cur = after;
        order = order_after;
        cum_branch = branch_origin_after;
    }

    let optimized = Optimized {
        program: cur,
        order,
        block_origin: cum_block,
        branch_origin: cum_branch,
        applications,
    };
    crate::hooks::check_optimize(program, &optimized);
    optimized
}

#[cfg(test)]
mod tests {
    use super::*;
    use fetchmech_workloads::{suite, InputId, Workload};

    fn run(name: &str, passes: &[PassKind]) -> (Workload, Profile, Optimized) {
        let w = suite::benchmark(name).expect("known");
        let p = Profile::collect(&w, &InputId::PROFILE, 30_000);
        let o = optimize(&w.program, &p, passes, &OptimizeConfig::default());
        (w, p, o)
    }

    #[test]
    fn full_pipeline_keeps_maps_consistent() {
        let (w, _, o) = run("compress", &PassKind::ALL);
        assert_eq!(o.applications.len(), 4);
        assert_eq!(o.block_origin.len(), o.program.num_blocks());
        assert_eq!(o.branch_origin.len(), o.program.num_branches() as usize);
        for &b in &o.block_origin {
            assert!((b.0 as usize) < w.program.num_blocks());
        }
        for &br in &o.branch_origin {
            assert!(br.0 < w.program.num_branches());
        }
        // The order is a permutation of the final program's blocks.
        let mut seen = vec![false; o.program.num_blocks()];
        for &b in &o.order {
            assert!(!seen[b.0 as usize]);
            seen[b.0 as usize] = true;
        }
        assert!(seen.iter().all(|&s| s));
        // Applications chain: each after is the next before.
        for pair in o.applications.windows(2) {
            assert_eq!(pair[0].after, pair[1].before);
        }
        assert_eq!(o.applications.last().expect("nonempty").after, o.program);
    }

    #[test]
    fn straighten_inverts_toward_the_superblock_order() {
        let (_, _, o) = run("eqntott", &[PassKind::Superblock, PassKind::Straighten]);
        let PassEdit::Straighten { inverted } = &o.applications[1].edit else {
            panic!("expected straighten edit");
        };
        assert!(*inverted > 0, "branchy code should invert something");
    }

    #[test]
    fn empty_pipeline_is_identity() {
        let (w, _, o) = run("compress", &[]);
        assert_eq!(o.program, w.program);
        assert!(o.applications.is_empty());
        assert_eq!(o.order, identity_blocks(w.program.num_blocks()));
    }

    #[test]
    fn pass_names_round_trip() {
        for p in PassKind::ALL {
            assert_eq!(PassKind::parse(p.name()), Some(p));
        }
        assert_eq!(PassKind::parse("nope"), None);
    }
}
