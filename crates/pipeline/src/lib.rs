//! # fetchmech-pipeline
//!
//! The out-of-order execution substrate for the `fetchmech` reproduction of
//! the ISCA '95 fetch-mechanisms paper:
//!
//! * [`MachineModel`] — the P14 / P18 / P112 configurations of Table 1,
//! * [`OooCore`] — a full-Tomasulo scheduling window with tag renaming,
//!   fully-pipelined functional units, and a reorder buffer,
//! * [`FetchUnit`] / [`FetchPacket`] / [`TraceCursor`] — the contract between
//!   the fetch mechanisms (implemented in the `fetchmech` core crate) and the
//!   pipeline driver,
//! * [`SchemeKind`] — the five fetch-alignment mechanisms of §3, hosted here
//!   (rather than in the core crate) so analysis layers can reason about
//!   scheme legality without depending on the simulator.
//!
//! # Examples
//!
//! ```
//! use fetchmech_pipeline::{MachineModel, OooCore};
//!
//! let machine = MachineModel::p14();
//! assert_eq!(machine.issue_rate, 4);
//! let core = OooCore::new(machine.ooo_config());
//! assert!(core.drained());
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod fetch;
pub mod machine;
pub mod ooo;
pub mod scheme;

pub use fetch::{BlockCursor, FetchPacket, FetchUnit, FetchedInst, TraceCursor};
pub use machine::MachineModel;
pub use ooo::{OooConfig, OooCore, OooStats, Resolved, StreamCore};
pub use scheme::{ParseSchemeError, SchemeKind};
