//! The fetch-unit interface and the trace cursor it consumes.
//!
//! Fetch mechanisms (implemented in the `fetchmech` core crate) are
//! *trace-driven*: they see the correct-path dynamic instruction stream and
//! model the per-cycle delivery constraints of their hardware — cache-block
//! geometry, bank conflicts, branch-prediction outcomes, and misprediction
//! stalls. Wrong-path instructions are not simulated; a mispredicted control
//! transfer ends the cycle's packet and stalls fetch until the pipeline
//! reports resolution (the paper's footnote 1: total penalty = fetch redirect
//! penalty + cycles until the branch executes).

use fetchmech_isa::{BlockStream, DynInst, SegTemplate};

/// One fetched instruction plus its prediction outcome.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FetchedInst {
    /// The dynamic instruction.
    pub inst: DynInst,
    /// `true` if the branch predictor mispredicted this control transfer
    /// (wrong direction or wrong target). Always `false` for non-control
    /// instructions.
    pub mispredicted: bool,
}

/// The instructions a fetch unit delivered in one cycle.
#[derive(Debug, Clone, Default)]
pub struct FetchPacket {
    /// Delivered instructions, in program order. At most one — the last —
    /// may be mispredicted.
    pub insts: Vec<FetchedInst>,
}

impl FetchPacket {
    /// An empty packet (a fetch bubble).
    #[must_use]
    pub fn empty() -> Self {
        Self::default()
    }

    /// Number of instructions delivered.
    #[must_use]
    pub fn len(&self) -> usize {
        self.insts.len()
    }

    /// Returns `true` if nothing was delivered.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.insts.is_empty()
    }

    /// Returns `true` if the packet ends in a mispredicted control transfer
    /// (after which the fetch unit has stalled itself).
    #[must_use]
    pub fn ends_mispredicted(&self) -> bool {
        self.insts.last().is_some_and(|f| f.mispredicted)
    }
}

/// A fetch mechanism, driven one cycle at a time by the simulator.
///
/// The contract:
///
/// 1. [`FetchUnit::cycle`] is called once per simulated cycle in which the
///    decoupling queue has room. It returns the instructions the mechanism
///    could align and deliver that cycle (possibly none).
/// 2. If the returned packet [ends mispredicted](FetchPacket::ends_mispredicted),
///    the unit must deliver nothing until
///    [`FetchUnit::on_mispredict_resolved`] is called with the cycle at which
///    the offending instruction executed; delivery then resumes no earlier
///    than `resolution + fetch_penalty` cycles.
/// 3. `unresolved_branches` is the number of in-flight predicted conditional
///    branches (dispatched or queued, not yet executed); implementations must
///    not fetch *past* a conditional branch when the count has reached the
///    machine's speculation depth.
pub trait FetchUnit {
    /// Produces this cycle's packet.
    fn cycle(&mut self, cycle: u64, unresolved_branches: u32) -> FetchPacket;

    /// Reports that the mispredicted control transfer at the end of a
    /// previous packet executed at `cycle`.
    fn on_mispredict_resolved(&mut self, cycle: u64);

    /// Returns `true` once the trace is exhausted and everything has been
    /// delivered.
    fn done(&mut self) -> bool;

    /// Total instructions delivered so far (the numerator of EIR).
    fn delivered(&self) -> u64;

    /// A short display name ("sequential", "collapsing", …).
    fn name(&self) -> &'static str;
}

/// A peekable cursor over a shared, immutable dynamic instruction trace.
///
/// Fetch mechanisms look ahead up to one issue-width of instructions to build
/// a packet, then consume what they delivered.
///
/// The trace is held as an `Arc<[DynInst]>`, so many cursors — on the same
/// thread or across a worker pool — share one materialized trace with no
/// copying: constructing a cursor from an existing `Arc` is a reference-count
/// bump, and every peek is a slice index. (The pre-PR-3 implementation boxed
/// a `dyn Iterator` and buffered into a `VecDeque`, which forced every caller
/// to hand over an owned trace per run.)
///
/// # Examples
///
/// ```
/// use fetchmech_isa::{Addr, DynInst, OpClass};
/// use fetchmech_pipeline::TraceCursor;
///
/// let insts: Vec<_> = (0..4)
///     .map(|i| DynInst::simple(Addr::from_word_index(i), OpClass::IntAlu, None, [None, None]))
///     .collect();
/// let mut cur = TraceCursor::new(insts);
/// assert_eq!(cur.peek(2).unwrap().addr, Addr::from_word_index(2));
/// cur.consume(3);
/// assert_eq!(cur.peek(0).unwrap().addr, Addr::from_word_index(3));
/// cur.consume(1);
/// assert!(cur.is_done());
/// ```
#[derive(Clone)]
pub struct TraceCursor {
    trace: std::sync::Arc<[DynInst]>,
    pos: usize,
}

impl std::fmt::Debug for TraceCursor {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TraceCursor")
            .field("len", &self.trace.len())
            .field("pos", &self.pos)
            .finish()
    }
}

impl TraceCursor {
    /// Wraps a trace. Accepts anything convertible to an `Arc<[DynInst]>`:
    /// an owned `Vec`, a borrowed slice (copied once), or an existing shared
    /// `Arc` (zero-copy).
    pub fn new(trace: impl Into<std::sync::Arc<[DynInst]>>) -> Self {
        Self {
            trace: trace.into(),
            pos: 0,
        }
    }

    /// Returns the instruction `offset` positions ahead of the cursor, if the
    /// trace extends that far.
    #[must_use]
    pub fn peek(&self, offset: usize) -> Option<&DynInst> {
        self.trace.get(self.pos + offset)
    }

    /// Advances the cursor by `n` instructions.
    ///
    /// # Panics
    ///
    /// Panics if fewer than `n` instructions remain.
    pub fn consume(&mut self, n: usize) {
        assert!(
            self.pos + n <= self.trace.len(),
            "consumed past end of trace"
        );
        self.pos += n;
    }

    /// Returns `true` when the trace is exhausted.
    #[must_use]
    pub fn is_done(&self) -> bool {
        self.pos >= self.trace.len()
    }

    /// Instructions not yet consumed.
    #[must_use]
    pub fn remaining(&self) -> usize {
        self.trace.len() - self.pos
    }

    /// A zero-copy handle to the underlying shared trace.
    #[must_use]
    pub fn shared(&self) -> std::sync::Arc<[DynInst]> {
        std::sync::Arc::clone(&self.trace)
    }
}

/// A peekable cursor over a shared run-length [`BlockStream`].
///
/// The block-level analogue of [`TraceCursor`]: the same peek/consume
/// contract over the same logical instruction sequence, but positioned as
/// (record, offset) into the stream so the fast fetch path can admit whole
/// template runs without touching individual instructions. `peek`/`consume`
/// transparently cross segment boundaries, so any per-instruction consumer
/// behaves exactly as it would over the materialized trace.
///
/// # Examples
///
/// ```
/// use fetchmech_isa::{Addr, BlockStream, DynInst, OpClass};
/// use fetchmech_pipeline::BlockCursor;
///
/// let insts: Vec<_> = (0..4)
///     .map(|i| DynInst::simple(Addr::from_word_index(i), OpClass::IntAlu, None, [None, None]))
///     .collect();
/// let stream = std::sync::Arc::new(BlockStream::from_insts(&insts));
/// let mut cur = BlockCursor::new(stream);
/// assert_eq!(cur.peek(2).unwrap().addr, Addr::from_word_index(2));
/// cur.consume(3);
/// assert_eq!(cur.peek(0).unwrap().addr, Addr::from_word_index(3));
/// cur.consume(1);
/// assert!(cur.is_done());
/// ```
#[derive(Clone)]
pub struct BlockCursor {
    stream: std::sync::Arc<BlockStream>,
    /// Current record index; `records().len()` once exhausted.
    rec: usize,
    /// Offset within the current record's template; always in-bounds while
    /// records remain.
    off: usize,
    /// Absolute instructions consumed.
    pos: u64,
}

impl std::fmt::Debug for BlockCursor {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("BlockCursor")
            .field("records", &self.stream.records().len())
            .field("rec", &self.rec)
            .field("off", &self.off)
            .field("pos", &self.pos)
            .finish()
    }
}

impl BlockCursor {
    /// Wraps a shared block stream, positioned at the start.
    #[must_use]
    pub fn new(stream: std::sync::Arc<BlockStream>) -> Self {
        Self {
            stream,
            rec: 0,
            off: 0,
            pos: 0,
        }
    }

    /// Returns the instruction `offset` positions ahead of the cursor, if the
    /// stream extends that far (crossing segment boundaries as needed).
    #[must_use]
    pub fn peek(&self, offset: usize) -> Option<&DynInst> {
        let records = self.stream.records();
        let mut rec = self.rec;
        let mut k = self.off + offset;
        while rec < records.len() {
            let t = self.stream.template(records[rec]);
            if k < t.len() {
                return Some(&t.insts()[k]);
            }
            k -= t.len();
            rec += 1;
        }
        None
    }

    /// Advances the cursor by `n` instructions.
    ///
    /// # Panics
    ///
    /// Panics if fewer than `n` instructions remain.
    pub fn consume(&mut self, n: usize) {
        let records = self.stream.records();
        let mut k = self.off + n;
        while self.rec < records.len() {
            let len = self.stream.template(records[self.rec]).len();
            if k < len {
                self.off = k;
                self.pos += n as u64;
                return;
            }
            k -= len;
            self.rec += 1;
        }
        self.off = 0;
        assert!(k == 0, "consumed past end of trace");
        self.pos += n as u64;
    }

    /// Returns `true` when the stream is exhausted.
    #[must_use]
    pub fn is_done(&self) -> bool {
        self.rec >= self.stream.records().len()
    }

    /// Instructions not yet consumed.
    #[must_use]
    pub fn remaining(&self) -> u64 {
        self.stream.total_insts() - self.pos
    }

    /// Absolute instructions consumed so far.
    #[must_use]
    pub fn pos(&self) -> u64 {
        self.pos
    }

    /// Index of the record the cursor is positioned in (equal to the record
    /// count once exhausted).
    #[must_use]
    pub fn record_index(&self) -> usize {
        self.rec
    }

    /// Offset within the current record's template (0 when exhausted).
    #[must_use]
    pub fn offset(&self) -> usize {
        self.off
    }

    /// The remainder of the current segment (from the cursor position to the
    /// segment's end), with its template id and offset, or `None` at end of
    /// stream. The slice always contains at least one instruction.
    #[must_use]
    pub fn run(&self) -> Option<(u32, usize, &SegTemplate)> {
        let records = self.stream.records();
        if self.rec >= records.len() {
            return None;
        }
        let id = records[self.rec];
        Some((id, self.off, self.stream.template(id)))
    }

    /// Iterates the instructions ahead of the cursor (inclusive of the
    /// current position) without consuming.
    pub fn iter_ahead(&self) -> impl Iterator<Item = &DynInst> + '_ {
        let records = self.stream.records();
        let first = records.get(self.rec).map(|&id| {
            let t = self.stream.template(id);
            t.insts()[self.off..].iter()
        });
        first.into_iter().flatten().chain(
            records[(self.rec + 1).min(records.len())..]
                .iter()
                .flat_map(|&id| self.stream.template(id).insts().iter()),
        )
    }

    /// A zero-copy handle to the underlying shared stream.
    #[must_use]
    pub fn shared(&self) -> std::sync::Arc<BlockStream> {
        std::sync::Arc::clone(&self.stream)
    }

    /// Borrows the underlying stream without touching the refcount.
    #[must_use]
    pub fn stream(&self) -> &BlockStream {
        &self.stream
    }
}

impl From<std::sync::Arc<BlockStream>> for BlockCursor {
    fn from(stream: std::sync::Arc<BlockStream>) -> Self {
        Self::new(stream)
    }
}

impl From<&std::sync::Arc<BlockStream>> for BlockCursor {
    fn from(stream: &std::sync::Arc<BlockStream>) -> Self {
        Self::new(std::sync::Arc::clone(stream))
    }
}

impl From<BlockStream> for BlockCursor {
    fn from(stream: BlockStream) -> Self {
        Self::new(std::sync::Arc::new(stream))
    }
}

impl From<Vec<DynInst>> for TraceCursor {
    fn from(trace: Vec<DynInst>) -> Self {
        Self::new(trace)
    }
}

impl From<std::sync::Arc<[DynInst]>> for TraceCursor {
    fn from(trace: std::sync::Arc<[DynInst]>) -> Self {
        Self::new(trace)
    }
}

impl From<&std::sync::Arc<[DynInst]>> for TraceCursor {
    fn from(trace: &std::sync::Arc<[DynInst]>) -> Self {
        Self::new(std::sync::Arc::clone(trace))
    }
}

impl From<&[DynInst]> for TraceCursor {
    fn from(trace: &[DynInst]) -> Self {
        Self::new(trace)
    }
}

impl FromIterator<DynInst> for TraceCursor {
    fn from_iter<I: IntoIterator<Item = DynInst>>(iter: I) -> Self {
        Self::new(iter.into_iter().collect::<Vec<_>>())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fetchmech_isa::{Addr, OpClass};

    fn seq(n: u64) -> Vec<DynInst> {
        (0..n)
            .map(|i| {
                DynInst::simple(
                    Addr::from_word_index(i),
                    OpClass::IntAlu,
                    None,
                    [None, None],
                )
            })
            .collect()
    }

    #[test]
    fn peek_does_not_consume() {
        let c = TraceCursor::new(seq(5));
        assert_eq!(c.peek(0).unwrap().addr, Addr::from_word_index(0));
        assert_eq!(c.peek(0).unwrap().addr, Addr::from_word_index(0));
        assert_eq!(c.peek(4).unwrap().addr, Addr::from_word_index(4));
        assert!(c.peek(5).is_none());
    }

    #[test]
    fn consume_advances() {
        let mut c = TraceCursor::new(seq(5));
        c.consume(2);
        assert_eq!(c.peek(0).unwrap().addr, Addr::from_word_index(2));
        c.consume(3);
        assert!(c.is_done());
    }

    #[test]
    #[should_panic(expected = "past end")]
    fn overconsume_panics() {
        let mut c = TraceCursor::new(seq(2));
        c.consume(3);
    }

    #[test]
    fn cursors_share_one_trace_allocation() {
        let trace: std::sync::Arc<[DynInst]> = seq(8).into();
        let a = TraceCursor::new(std::sync::Arc::clone(&trace));
        let b = TraceCursor::from(&trace);
        assert!(std::sync::Arc::ptr_eq(&a.shared(), &b.shared()));
        assert_eq!(a.remaining(), 8);
        assert_eq!(b.remaining(), 8);
    }

    fn looped_trace() -> Vec<DynInst> {
        // Two-segment loop plus a cut tail, exercising boundary crossings.
        let branch = |addr: u64, taken: bool, target: u64| DynInst {
            addr: Addr::new(addr),
            op: OpClass::CondBranch,
            dest: None,
            srcs: [None, None],
            next_pc: Addr::new(if taken { target } else { addr + 4 }),
            ctrl: Some(fetchmech_isa::DynCtrl {
                branch_id: None,
                taken,
                target: Addr::new(target),
                link: None,
            }),
        };
        let alu = |addr: u64| DynInst::simple(Addr::new(addr), OpClass::IntAlu, None, [None, None]);
        let mut t = Vec::new();
        for _ in 0..3 {
            t.extend_from_slice(&[alu(0x100), alu(0x104), branch(0x108, true, 0x100)]);
        }
        t.extend_from_slice(&[
            alu(0x100),
            alu(0x104),
            branch(0x108, false, 0x100),
            alu(0x10c),
        ]);
        t
    }

    #[test]
    fn block_cursor_matches_trace_cursor() {
        let trace = looped_trace();
        let stream = std::sync::Arc::new(BlockStream::from_insts(&trace));
        let mut b = BlockCursor::new(stream);
        let mut t = TraceCursor::new(trace.clone());
        let mut consumed = 0usize;
        for step in [1usize, 2, 4, 0, 3, 1, 2] {
            for k in 0..8 {
                assert_eq!(b.peek(k), t.peek(k), "peek {k} after {consumed}");
            }
            let n = step.min(t.remaining());
            b.consume(n);
            t.consume(n);
            consumed += n;
            assert_eq!(b.is_done(), t.is_done());
            assert_eq!(b.remaining(), t.remaining() as u64);
        }
        assert_eq!(b.pos(), consumed as u64);
    }

    #[test]
    fn block_cursor_iter_ahead_matches_tail() {
        let trace = looped_trace();
        let stream = std::sync::Arc::new(BlockStream::from_insts(&trace));
        let mut b = BlockCursor::new(stream);
        b.consume(4);
        let ahead: Vec<DynInst> = b.iter_ahead().copied().collect();
        assert_eq!(ahead, trace[4..]);
    }

    #[test]
    fn block_cursor_run_is_segment_remainder() {
        let trace = looped_trace();
        let stream = std::sync::Arc::new(BlockStream::from_insts(&trace));
        let mut b = BlockCursor::new(stream);
        let (_, off, t) = b.run().unwrap();
        assert_eq!(off, 0);
        assert_eq!(t.len(), 3);
        b.consume(1);
        let (_, off, t) = b.run().unwrap();
        assert_eq!(off, 1);
        assert_eq!(&t.insts()[off..], &trace[1..3]);
        b.consume(t.len() - off);
        let (_, off, _) = b.run().unwrap();
        assert_eq!(off, 0);
        b.consume(b.remaining() as usize);
        assert!(b.run().is_none());
        assert!(b.is_done());
    }

    #[test]
    #[should_panic(expected = "past end")]
    fn block_cursor_overconsume_panics() {
        let trace = looped_trace();
        let stream = std::sync::Arc::new(BlockStream::from_insts(&trace));
        let mut b = BlockCursor::new(stream);
        b.consume(trace.len() + 1);
    }

    #[test]
    fn packet_mispredict_flag() {
        let mut p = FetchPacket::empty();
        assert!(!p.ends_mispredicted());
        p.insts.push(FetchedInst {
            inst: DynInst::simple(Addr::new(0), OpClass::IntAlu, None, [None, None]),
            mispredicted: false,
        });
        assert!(!p.ends_mispredicted());
        p.insts.push(FetchedInst {
            inst: DynInst::simple(Addr::new(4), OpClass::IntAlu, None, [None, None]),
            mispredicted: true,
        });
        assert!(p.ends_mispredicted());
        assert_eq!(p.len(), 2);
        assert!(!p.is_empty());
    }
}
