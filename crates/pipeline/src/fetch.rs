//! The fetch-unit interface and the trace cursor it consumes.
//!
//! Fetch mechanisms (implemented in the `fetchmech` core crate) are
//! *trace-driven*: they see the correct-path dynamic instruction stream and
//! model the per-cycle delivery constraints of their hardware — cache-block
//! geometry, bank conflicts, branch-prediction outcomes, and misprediction
//! stalls. Wrong-path instructions are not simulated; a mispredicted control
//! transfer ends the cycle's packet and stalls fetch until the pipeline
//! reports resolution (the paper's footnote 1: total penalty = fetch redirect
//! penalty + cycles until the branch executes).

use fetchmech_isa::DynInst;

/// One fetched instruction plus its prediction outcome.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FetchedInst {
    /// The dynamic instruction.
    pub inst: DynInst,
    /// `true` if the branch predictor mispredicted this control transfer
    /// (wrong direction or wrong target). Always `false` for non-control
    /// instructions.
    pub mispredicted: bool,
}

/// The instructions a fetch unit delivered in one cycle.
#[derive(Debug, Clone, Default)]
pub struct FetchPacket {
    /// Delivered instructions, in program order. At most one — the last —
    /// may be mispredicted.
    pub insts: Vec<FetchedInst>,
}

impl FetchPacket {
    /// An empty packet (a fetch bubble).
    #[must_use]
    pub fn empty() -> Self {
        Self::default()
    }

    /// Number of instructions delivered.
    #[must_use]
    pub fn len(&self) -> usize {
        self.insts.len()
    }

    /// Returns `true` if nothing was delivered.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.insts.is_empty()
    }

    /// Returns `true` if the packet ends in a mispredicted control transfer
    /// (after which the fetch unit has stalled itself).
    #[must_use]
    pub fn ends_mispredicted(&self) -> bool {
        self.insts.last().is_some_and(|f| f.mispredicted)
    }
}

/// A fetch mechanism, driven one cycle at a time by the simulator.
///
/// The contract:
///
/// 1. [`FetchUnit::cycle`] is called once per simulated cycle in which the
///    decoupling queue has room. It returns the instructions the mechanism
///    could align and deliver that cycle (possibly none).
/// 2. If the returned packet [ends mispredicted](FetchPacket::ends_mispredicted),
///    the unit must deliver nothing until
///    [`FetchUnit::on_mispredict_resolved`] is called with the cycle at which
///    the offending instruction executed; delivery then resumes no earlier
///    than `resolution + fetch_penalty` cycles.
/// 3. `unresolved_branches` is the number of in-flight predicted conditional
///    branches (dispatched or queued, not yet executed); implementations must
///    not fetch *past* a conditional branch when the count has reached the
///    machine's speculation depth.
pub trait FetchUnit {
    /// Produces this cycle's packet.
    fn cycle(&mut self, cycle: u64, unresolved_branches: u32) -> FetchPacket;

    /// Reports that the mispredicted control transfer at the end of a
    /// previous packet executed at `cycle`.
    fn on_mispredict_resolved(&mut self, cycle: u64);

    /// Returns `true` once the trace is exhausted and everything has been
    /// delivered.
    fn done(&mut self) -> bool;

    /// Total instructions delivered so far (the numerator of EIR).
    fn delivered(&self) -> u64;

    /// A short display name ("sequential", "collapsing", …).
    fn name(&self) -> &'static str;
}

/// A peekable cursor over a shared, immutable dynamic instruction trace.
///
/// Fetch mechanisms look ahead up to one issue-width of instructions to build
/// a packet, then consume what they delivered.
///
/// The trace is held as an `Arc<[DynInst]>`, so many cursors — on the same
/// thread or across a worker pool — share one materialized trace with no
/// copying: constructing a cursor from an existing `Arc` is a reference-count
/// bump, and every peek is a slice index. (The pre-PR-3 implementation boxed
/// a `dyn Iterator` and buffered into a `VecDeque`, which forced every caller
/// to hand over an owned trace per run.)
///
/// # Examples
///
/// ```
/// use fetchmech_isa::{Addr, DynInst, OpClass};
/// use fetchmech_pipeline::TraceCursor;
///
/// let insts: Vec<_> = (0..4)
///     .map(|i| DynInst::simple(Addr::from_word_index(i), OpClass::IntAlu, None, [None, None]))
///     .collect();
/// let mut cur = TraceCursor::new(insts);
/// assert_eq!(cur.peek(2).unwrap().addr, Addr::from_word_index(2));
/// cur.consume(3);
/// assert_eq!(cur.peek(0).unwrap().addr, Addr::from_word_index(3));
/// cur.consume(1);
/// assert!(cur.is_done());
/// ```
#[derive(Clone)]
pub struct TraceCursor {
    trace: std::sync::Arc<[DynInst]>,
    pos: usize,
}

impl std::fmt::Debug for TraceCursor {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TraceCursor")
            .field("len", &self.trace.len())
            .field("pos", &self.pos)
            .finish()
    }
}

impl TraceCursor {
    /// Wraps a trace. Accepts anything convertible to an `Arc<[DynInst]>`:
    /// an owned `Vec`, a borrowed slice (copied once), or an existing shared
    /// `Arc` (zero-copy).
    pub fn new(trace: impl Into<std::sync::Arc<[DynInst]>>) -> Self {
        Self {
            trace: trace.into(),
            pos: 0,
        }
    }

    /// Returns the instruction `offset` positions ahead of the cursor, if the
    /// trace extends that far.
    #[must_use]
    pub fn peek(&self, offset: usize) -> Option<&DynInst> {
        self.trace.get(self.pos + offset)
    }

    /// Advances the cursor by `n` instructions.
    ///
    /// # Panics
    ///
    /// Panics if fewer than `n` instructions remain.
    pub fn consume(&mut self, n: usize) {
        assert!(
            self.pos + n <= self.trace.len(),
            "consumed past end of trace"
        );
        self.pos += n;
    }

    /// Returns `true` when the trace is exhausted.
    #[must_use]
    pub fn is_done(&self) -> bool {
        self.pos >= self.trace.len()
    }

    /// Instructions not yet consumed.
    #[must_use]
    pub fn remaining(&self) -> usize {
        self.trace.len() - self.pos
    }

    /// A zero-copy handle to the underlying shared trace.
    #[must_use]
    pub fn shared(&self) -> std::sync::Arc<[DynInst]> {
        std::sync::Arc::clone(&self.trace)
    }
}

impl From<Vec<DynInst>> for TraceCursor {
    fn from(trace: Vec<DynInst>) -> Self {
        Self::new(trace)
    }
}

impl From<std::sync::Arc<[DynInst]>> for TraceCursor {
    fn from(trace: std::sync::Arc<[DynInst]>) -> Self {
        Self::new(trace)
    }
}

impl From<&std::sync::Arc<[DynInst]>> for TraceCursor {
    fn from(trace: &std::sync::Arc<[DynInst]>) -> Self {
        Self::new(std::sync::Arc::clone(trace))
    }
}

impl From<&[DynInst]> for TraceCursor {
    fn from(trace: &[DynInst]) -> Self {
        Self::new(trace)
    }
}

impl FromIterator<DynInst> for TraceCursor {
    fn from_iter<I: IntoIterator<Item = DynInst>>(iter: I) -> Self {
        Self::new(iter.into_iter().collect::<Vec<_>>())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fetchmech_isa::{Addr, OpClass};

    fn seq(n: u64) -> Vec<DynInst> {
        (0..n)
            .map(|i| {
                DynInst::simple(
                    Addr::from_word_index(i),
                    OpClass::IntAlu,
                    None,
                    [None, None],
                )
            })
            .collect()
    }

    #[test]
    fn peek_does_not_consume() {
        let c = TraceCursor::new(seq(5));
        assert_eq!(c.peek(0).unwrap().addr, Addr::from_word_index(0));
        assert_eq!(c.peek(0).unwrap().addr, Addr::from_word_index(0));
        assert_eq!(c.peek(4).unwrap().addr, Addr::from_word_index(4));
        assert!(c.peek(5).is_none());
    }

    #[test]
    fn consume_advances() {
        let mut c = TraceCursor::new(seq(5));
        c.consume(2);
        assert_eq!(c.peek(0).unwrap().addr, Addr::from_word_index(2));
        c.consume(3);
        assert!(c.is_done());
    }

    #[test]
    #[should_panic(expected = "past end")]
    fn overconsume_panics() {
        let mut c = TraceCursor::new(seq(2));
        c.consume(3);
    }

    #[test]
    fn cursors_share_one_trace_allocation() {
        let trace: std::sync::Arc<[DynInst]> = seq(8).into();
        let a = TraceCursor::new(std::sync::Arc::clone(&trace));
        let b = TraceCursor::from(&trace);
        assert!(std::sync::Arc::ptr_eq(&a.shared(), &b.shared()));
        assert_eq!(a.remaining(), 8);
        assert_eq!(b.remaining(), 8);
    }

    #[test]
    fn packet_mispredict_flag() {
        let mut p = FetchPacket::empty();
        assert!(!p.ends_mispredicted());
        p.insts.push(FetchedInst {
            inst: DynInst::simple(Addr::new(0), OpClass::IntAlu, None, [None, None]),
            mispredicted: false,
        });
        assert!(!p.ends_mispredicted());
        p.insts.push(FetchedInst {
            inst: DynInst::simple(Addr::new(4), OpClass::IntAlu, None, [None, None]),
            mispredicted: true,
        });
        assert!(p.ends_mispredicted());
        assert_eq!(p.len(), 2);
        assert!(!p.is_empty());
    }
}
