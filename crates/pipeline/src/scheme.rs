//! The five fetch schemes the paper evaluates.

use std::fmt;
use std::str::FromStr;

/// An instruction-fetch alignment mechanism (§3 of the paper).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum SchemeKind {
    /// Fetch one cache block; deliver from the fetch offset to the first
    /// predicted-taken branch or the block end (the realistic lower bound).
    Sequential,
    /// Two-bank cache with next-block prefetch: delivery may run across the
    /// sequential block boundary but still ends at any predicted-taken
    /// branch.
    InterleavedSequential,
    /// Fetches the current block and the BTB-predicted successor block
    /// simultaneously (when they fall in different banks); delivery may cross
    /// one *inter-block* taken branch. Intra-block branch targets cannot be
    /// aligned.
    BankedSequential,
    /// Banked-sequential plus a collapsing buffer that squeezes out the gaps
    /// left by forward *intra-block* branches (the paper's contribution;
    /// crossbar implementation, two-cycle fetch misprediction penalty).
    CollapsingBuffer,
    /// Unlimited alignment bandwidth: the upper bound. Still pays I-cache
    /// misses and branch mispredictions.
    Perfect,
}

impl SchemeKind {
    /// All schemes, in the paper's presentation order (ending with the
    /// `perfect` bound).
    pub const ALL: [SchemeKind; 5] = [
        SchemeKind::Sequential,
        SchemeKind::InterleavedSequential,
        SchemeKind::BankedSequential,
        SchemeKind::CollapsingBuffer,
        SchemeKind::Perfect,
    ];

    /// The four realizable hardware schemes (everything but `perfect`).
    pub const HARDWARE: [SchemeKind; 4] = [
        SchemeKind::Sequential,
        SchemeKind::InterleavedSequential,
        SchemeKind::BankedSequential,
        SchemeKind::CollapsingBuffer,
    ];

    /// Short stable name (also accepted by [`FromStr`]).
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            SchemeKind::Sequential => "sequential",
            SchemeKind::InterleavedSequential => "interleaved",
            SchemeKind::BankedSequential => "banked",
            SchemeKind::CollapsingBuffer => "collapsing",
            SchemeKind::Perfect => "perfect",
        }
    }

    /// Number of independently-addressable cache banks the scheme assumes.
    #[must_use]
    pub fn banks(self) -> u32 {
        match self {
            SchemeKind::Sequential | SchemeKind::Perfect => 1,
            _ => 2,
        }
    }

    /// Maximum distinct cache blocks one packet may touch: `Some(1)` for
    /// the one-block sequential scheme, `Some(2)` for the paired schemes,
    /// `None` (unbounded) for the perfect front end.
    #[must_use]
    pub fn max_packet_blocks(self) -> Option<u32> {
        match self {
            SchemeKind::Sequential => Some(1),
            SchemeKind::InterleavedSequential
            | SchemeKind::BankedSequential
            | SchemeKind::CollapsingBuffer => Some(2),
            SchemeKind::Perfect => None,
        }
    }

    /// Whether the second fetched block is the BTB-predicted successor
    /// (banked/collapsing) rather than the forced next-sequential block
    /// (interleaved) or nothing at all.
    #[must_use]
    pub fn predicts_second_block(self) -> bool {
        matches!(
            self,
            SchemeKind::BankedSequential | SchemeKind::CollapsingBuffer
        )
    }

    /// Whether delivery may continue past a correctly-predicted taken
    /// *inter-block* transfer within one cycle (at most once per cycle for
    /// the banked schemes; without limit for perfect).
    #[must_use]
    pub fn crosses_taken(self) -> bool {
        matches!(
            self,
            SchemeKind::BankedSequential | SchemeKind::CollapsingBuffer | SchemeKind::Perfect
        )
    }

    /// Whether delivery may continue past a correctly-predicted taken
    /// *forward intra-block* transfer, squeezing out the gap (the
    /// collapsing buffer's contribution; perfect subsumes it).
    #[must_use]
    pub fn collapses_forward(self) -> bool {
        matches!(self, SchemeKind::CollapsingBuffer | SchemeKind::Perfect)
    }
}

impl fmt::Display for SchemeKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Error from parsing a [`SchemeKind`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseSchemeError(String);

impl fmt::Display for ParseSchemeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "unknown scheme {:?} (expected sequential, interleaved, banked, collapsing, or perfect)",
            self.0
        )
    }
}

impl std::error::Error for ParseSchemeError {}

impl FromStr for SchemeKind {
    type Err = ParseSchemeError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        SchemeKind::ALL
            .into_iter()
            .find(|k| k.name() == s)
            .ok_or_else(|| ParseSchemeError(s.to_owned()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names_roundtrip() {
        for k in SchemeKind::ALL {
            assert_eq!(k.name().parse::<SchemeKind>().expect("roundtrip"), k);
        }
    }

    #[test]
    fn unknown_name_errors() {
        let err = "warp".parse::<SchemeKind>().unwrap_err();
        assert!(err.to_string().contains("warp"));
    }

    #[test]
    fn hardware_excludes_perfect() {
        assert!(!SchemeKind::HARDWARE.contains(&SchemeKind::Perfect));
        assert_eq!(SchemeKind::HARDWARE.len() + 1, SchemeKind::ALL.len());
    }

    #[test]
    fn bank_counts() {
        assert_eq!(SchemeKind::Sequential.banks(), 1);
        assert_eq!(SchemeKind::BankedSequential.banks(), 2);
        assert_eq!(SchemeKind::CollapsingBuffer.banks(), 2);
    }
}
