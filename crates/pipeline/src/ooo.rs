//! The Tomasulo-style out-of-order execution core.
//!
//! Mirrors the paper's machine model: a scheduling window of generic
//! reservation stations with tag-based renaming, a set of fully-pipelined
//! functional units (result-bus count equals unit count, so completion is
//! never throttled), and a reorder buffer providing in-order retirement and
//! precise redirect. Data-cache misses are not modeled, as in the paper.
//!
//! Because wrong-path instructions are never fetched (see
//! [`crate::fetch`]), the core needs no flush logic: a mispredicted branch
//! simply stalls fetch until it executes, reproducing the paper's penalty
//! model (fetch redirect penalty + cycles until the branch resolves).

use std::collections::{HashSet, VecDeque};

use fetchmech_isa::{FuClass, OpClass};

use crate::fetch::FetchedInst;

/// Sizing of the out-of-order core.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct OooConfig {
    /// Dispatch and retire width per cycle.
    pub issue_rate: u32,
    /// Scheduling-window (reservation-station) entries.
    pub window: u32,
    /// Reorder-buffer entries.
    pub rob: u32,
    /// Fixed-point units.
    pub fxu: u32,
    /// Floating-point units.
    pub fpu: u32,
    /// Branch units.
    pub branch_units: u32,
    /// Load/store units.
    pub mem_units: u32,
}

impl OooConfig {
    fn units(&self, class: FuClass) -> u32 {
        match class {
            FuClass::Fxu => self.fxu,
            FuClass::Fpu => self.fpu,
            FuClass::Branch => self.branch_units,
            FuClass::Mem => self.mem_units,
        }
    }
}

/// A control transfer that finished executing this cycle.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Resolved {
    /// The instruction's dispatch sequence number.
    pub seq: u64,
    /// Whether fetch had flagged it as mispredicted.
    pub mispredicted: bool,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum State {
    /// Dispatched, waiting in the window for operands and a unit.
    InWindow,
    /// Executing; completes at the stored cycle.
    Exec { done_at: u64 },
    /// Finished; awaiting in-order retirement.
    Done,
}

#[derive(Debug, Clone)]
struct Entry {
    seq: u64,
    op: OpClass,
    mispredicted: bool,
    deps: [Option<u64>; 2],
    state: State,
}

/// Aggregate core statistics.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct OooStats {
    /// Instructions retired.
    pub retired: u64,
    /// Instructions dispatched.
    pub dispatched: u64,
    /// Cycles in which the window was full at dispatch time.
    pub window_full_cycles: u64,
}

/// The out-of-order core. Drive it with, per cycle:
/// [`OooCore::begin_cycle`] (complete + retire), then [`OooCore::fire`],
/// then up to `issue_rate` [`OooCore::dispatch`] calls.
#[derive(Debug)]
pub struct OooCore {
    cfg: OooConfig,
    rob: VecDeque<Entry>,
    window_used: u32,
    last_writer: [Option<u64>; 64],
    next_seq: u64,
    unresolved_cond: u32,
    completed: HashSet<u64>,
    stats: OooStats,
}

impl OooCore {
    /// Creates an empty core.
    ///
    /// # Panics
    ///
    /// Panics if any sizing field is zero.
    #[must_use]
    pub fn new(cfg: OooConfig) -> Self {
        assert!(
            cfg.issue_rate > 0 && cfg.window > 0 && cfg.rob > 0,
            "zero-sized core"
        );
        assert!(
            cfg.fxu > 0 && cfg.fpu > 0 && cfg.branch_units > 0 && cfg.mem_units > 0,
            "every unit class needs at least one unit"
        );
        Self {
            cfg,
            rob: VecDeque::new(),
            window_used: 0,
            last_writer: [None; 64],
            next_seq: 0,
            unresolved_cond: 0,
            completed: HashSet::new(),
            stats: OooStats::default(),
        }
    }

    /// Returns the configuration.
    #[must_use]
    pub fn config(&self) -> &OooConfig {
        &self.cfg
    }

    fn min_inflight_seq(&self) -> u64 {
        self.rob.front().map_or(self.next_seq, |e| e.seq)
    }

    /// Completes execution for instructions finishing at `cycle` and retires
    /// up to `issue_rate` completed instructions in order. Returns the
    /// control transfers that resolved this cycle.
    pub fn begin_cycle(&mut self, cycle: u64) -> Vec<Resolved> {
        let mut resolved = Vec::new();
        for e in &mut self.rob {
            if let State::Exec { done_at } = e.state {
                if done_at <= cycle {
                    e.state = State::Done;
                    self.completed.insert(e.seq);
                    // Halt redirects fetch to the restart point, so it
                    // resolves like a control transfer.
                    if e.op.is_control() || e.op == OpClass::Halt {
                        resolved.push(Resolved {
                            seq: e.seq,
                            mispredicted: e.mispredicted,
                        });
                    }
                    if e.op == OpClass::CondBranch {
                        self.unresolved_cond -= 1;
                    }
                }
            }
        }
        let mut retired = 0;
        while retired < self.cfg.issue_rate {
            match self.rob.front() {
                Some(e) if e.state == State::Done => {
                    let e = self.rob.pop_front().expect("front exists");
                    self.completed.remove(&e.seq);
                    self.stats.retired += 1;
                    retired += 1;
                }
                _ => break,
            }
        }
        resolved
    }

    /// Fires ready window entries into free functional units, oldest first.
    pub fn fire(&mut self, cycle: u64) {
        let mut avail = [
            self.cfg.units(FuClass::Fxu),
            self.cfg.units(FuClass::Fpu),
            self.cfg.units(FuClass::Branch),
            self.cfg.units(FuClass::Mem),
        ];
        let class_idx = |c: FuClass| match c {
            FuClass::Fxu => 0,
            FuClass::Fpu => 1,
            FuClass::Branch => 2,
            FuClass::Mem => 3,
        };
        // Readiness depends only on pre-cycle completion state, so gather
        // fire decisions against a snapshot of the dependence predicate.
        let min_seq = self.min_inflight_seq();
        let completed = &self.completed;
        let ready = |deps: &[Option<u64>; 2]| {
            deps.iter()
                .flatten()
                .all(|&d| d < min_seq || completed.contains(&d))
        };
        let mut fired = Vec::new();
        for (i, e) in self.rob.iter().enumerate() {
            if e.state == State::InWindow && ready(&e.deps) {
                let ci = class_idx(e.op.fu_class());
                if avail[ci] > 0 {
                    avail[ci] -= 1;
                    fired.push(i);
                }
            }
        }
        for i in fired {
            let latency = u64::from(self.rob[i].op.latency());
            self.rob[i].state = State::Exec {
                done_at: cycle + latency,
            };
            self.window_used -= 1;
        }
    }

    /// Returns `true` if both a window slot and a ROB slot are free.
    #[must_use]
    pub fn can_accept(&self) -> bool {
        self.window_used < self.cfg.window && (self.rob.len() as u32) < self.cfg.rob
    }

    /// Dispatches one fetched instruction, renaming its sources against the
    /// last-writer table. Returns the assigned sequence number.
    ///
    /// # Panics
    ///
    /// Panics if called while [`OooCore::can_accept`] is `false`.
    pub fn dispatch(&mut self, fetched: &FetchedInst) -> u64 {
        assert!(self.can_accept(), "dispatch into a full window/ROB");
        let seq = self.next_seq;
        self.next_seq += 1;
        let inst = &fetched.inst;
        let mut deps = [None, None];
        for (slot, src) in inst.srcs.iter().enumerate() {
            if let Some(reg) = src {
                deps[slot] = self.last_writer[reg.file_index()];
            }
        }
        if let Some(dest) = inst.dest {
            self.last_writer[dest.file_index()] = Some(seq);
        }
        if inst.op == OpClass::CondBranch {
            self.unresolved_cond += 1;
        }
        self.rob.push_back(Entry {
            seq,
            op: inst.op,
            mispredicted: fetched.mispredicted,
            deps,
            state: State::InWindow,
        });
        self.window_used += 1;
        self.stats.dispatched += 1;
        seq
    }

    /// Records that dispatch was blocked this cycle (for statistics).
    pub fn note_window_full(&mut self) {
        self.stats.window_full_cycles += 1;
    }

    /// Audits the core's internal bookkeeping against its ground truth — the
    /// reorder buffer contents — and returns a description of the first
    /// inconsistency found.
    ///
    /// This is the pipeline-side hook of the `fetchmech-sanitizer` layer:
    /// the cycle-level sanitizer (see the `fetchmech` core crate) calls it
    /// once per simulated cycle when sanitizing is enabled. It is `O(ROB)`
    /// and allocation-free on the success path, and it is *not* gated on a
    /// feature so callers decide when to pay for it.
    pub fn audit_invariants(&self) -> Result<(), String> {
        if self.rob.len() as u32 > self.cfg.rob {
            return Err(format!(
                "ROB holds {} entries, capacity {}",
                self.rob.len(),
                self.cfg.rob
            ));
        }
        if self.window_used > self.cfg.window {
            return Err(format!(
                "window_used {} exceeds window capacity {}",
                self.window_used, self.cfg.window
            ));
        }
        let in_window = self
            .rob
            .iter()
            .filter(|e| e.state == State::InWindow)
            .count() as u32;
        if in_window != self.window_used {
            return Err(format!(
                "window_used {} but {} ROB entries are InWindow",
                self.window_used, in_window
            ));
        }
        let done = self.rob.iter().filter(|e| e.state == State::Done).count();
        if done != self.completed.len() {
            return Err(format!(
                "{done} Done ROB entries but {} completion tags",
                self.completed.len()
            ));
        }
        let unresolved = self
            .rob
            .iter()
            .filter(|e| e.op == OpClass::CondBranch && e.state != State::Done)
            .count() as u32;
        if unresolved != self.unresolved_cond {
            return Err(format!(
                "unresolved_cond {} but {} unexecuted conditional branches in flight",
                self.unresolved_cond, unresolved
            ));
        }
        let mut prev: Option<u64> = None;
        for e in &self.rob {
            if e.state == State::Done && !self.completed.contains(&e.seq) {
                return Err(format!(
                    "Done entry seq {} missing its completion tag",
                    e.seq
                ));
            }
            if let Some(p) = prev {
                if e.seq <= p {
                    return Err(format!(
                        "ROB sequence numbers not strictly increasing ({p} then {})",
                        e.seq
                    ));
                }
            }
            prev = Some(e.seq);
        }
        if self.stats.dispatched != self.stats.retired + self.rob.len() as u64 {
            return Err(format!(
                "conservation: dispatched {} != retired {} + in-flight {}",
                self.stats.dispatched,
                self.stats.retired,
                self.rob.len()
            ));
        }
        Ok(())
    }

    /// Number of dispatched conditional branches not yet executed.
    #[must_use]
    pub fn unresolved_cond(&self) -> u32 {
        self.unresolved_cond
    }

    /// Returns `true` when no instructions remain in flight.
    #[must_use]
    pub fn drained(&self) -> bool {
        self.rob.is_empty()
    }

    /// Returns core statistics.
    #[must_use]
    pub fn stats(&self) -> OooStats {
        self.stats
    }
}

/// Sequence-number sentinel for "no dependence" in [`StreamCore`].
const SEQ_NONE: u64 = u64::MAX;

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum SState {
    InWindow,
    Exec,
    Done,
}

#[derive(Debug, Clone)]
struct SEntry {
    op: OpClass,
    mispredicted: bool,
    deps: [u64; 2],
    state: SState,
    /// Head of the intrusive list of entries waiting on this one to
    /// complete (`SEQ_NONE` = none). Drained when this entry completes.
    waiter_head: u64,
    /// Next entry waiting on the same producer as this one.
    next_waiter: u64,
}

impl SEntry {
    /// Filler for unoccupied ring slots.
    const IDLE: Self = Self {
        op: OpClass::Nop,
        mispredicted: false,
        deps: [SEQ_NONE; 2],
        state: SState::Done,
        waiter_head: SEQ_NONE,
        next_waiter: SEQ_NONE,
    };
}

/// The allocation-light out-of-order core of the block-stream fast path.
///
/// Cycle-for-cycle timing-identical to [`OooCore`] (the differential-oracle
/// grid test in the core crate enforces whole-`SimResult` equality), but
/// engineered for the hot loop:
///
/// * the ROB is a power-of-two ring indexed by `seq & mask` — no deque
///   arithmetic, no per-entry allocation or destruction, and dependence
///   readiness is a masked index lookup instead of a `HashSet` probe;
/// * completions are event-driven through a small `done_at` bucket ring
///   (maximum latency is 2 cycles) instead of an every-cycle ROB scan;
/// * wakeup is event-driven too: a not-ready entry parks on an intrusive
///   waiter list hanging off the producer it is blocked on, and is moved to
///   the ready list when that producer completes — each dependence edge is
///   examined O(1) times total instead of once per cycle;
/// * [`fire`](Self::fire) walks only the *ready* list (age-ordered) and
///   reports whether a ready entry was *starved* of a functional unit, which
///   is what lets the simulator loop skip provably-idle cycles;
/// * [`next_completion`](Self::next_completion) and
///   [`front_retirable`](Self::front_retirable) expose the information the
///   skip logic needs to stay exact (retirement of a completed backlog
///   proceeds on cycles with no completions, so skips must not jump it).
#[derive(Debug)]
pub struct StreamCore {
    cfg: OooConfig,
    /// Oldest in-flight sequence number; live slots are
    /// `front_seq..next_seq`.
    front_seq: u64,
    next_seq: u64,
    /// Ring of in-flight entries, indexed by `seq & rob_mask`.
    rob: Box<[SEntry]>,
    rob_mask: u64,
    /// Sequence numbers of `InWindow` entries whose dependences have all
    /// completed, ascending (age order). Entries with an outstanding
    /// dependence are parked on that producer's waiter list instead.
    ready: Vec<u64>,
    /// Count of `InWindow` entries (ready or waiting).
    in_window: u32,
    last_writer: [u64; 64],
    unresolved_cond: u32,
    /// Completion events keyed by `done_at & 3`; pending `done_at`s always
    /// lie within 2 cycles, so a ring of 4 is unambiguous.
    buckets: [Vec<(u64, u64)>; 4],
    pending: u32,
    stats: OooStats,
}

impl StreamCore {
    /// Creates an empty core.
    ///
    /// # Panics
    ///
    /// Panics if any sizing field is zero.
    #[must_use]
    pub fn new(cfg: OooConfig) -> Self {
        assert!(
            cfg.issue_rate > 0 && cfg.window > 0 && cfg.rob > 0,
            "zero-sized core"
        );
        assert!(
            cfg.fxu > 0 && cfg.fpu > 0 && cfg.branch_units > 0 && cfg.mem_units > 0,
            "every unit class needs at least one unit"
        );
        Self {
            cfg,
            front_seq: 0,
            next_seq: 0,
            rob: vec![SEntry::IDLE; (cfg.rob as usize).next_power_of_two()].into_boxed_slice(),
            rob_mask: (cfg.rob as u64).next_power_of_two() - 1,
            ready: Vec::with_capacity(cfg.window as usize),
            in_window: 0,
            last_writer: [SEQ_NONE; 64],
            unresolved_cond: 0,
            buckets: [Vec::new(), Vec::new(), Vec::new(), Vec::new()],
            pending: 0,
            stats: OooStats::default(),
        }
    }

    /// Returns the configuration.
    #[must_use]
    pub fn config(&self) -> &OooConfig {
        &self.cfg
    }

    /// Completes instructions finishing at `cycle`, then retires up to
    /// `issue_rate` completed instructions in order. Returns `true` if the
    /// `watched` sequence number (the pending mispredicted control transfer)
    /// resolved this cycle.
    pub fn begin_cycle(&mut self, cycle: u64, watched: Option<u64>) -> bool {
        let mut watched_resolved = false;
        let mut bucket = std::mem::take(&mut self.buckets[(cycle & 3) as usize]);
        self.pending -= bucket.len() as u32;
        for &(done_at, seq) in &bucket {
            debug_assert_eq!(done_at, cycle, "completion event missed its cycle");
            let e = &mut self.rob[(seq & self.rob_mask) as usize];
            debug_assert_eq!(e.state, SState::Exec);
            e.state = SState::Done;
            let mut waiter = std::mem::replace(&mut e.waiter_head, SEQ_NONE);
            if e.op == OpClass::CondBranch {
                self.unresolved_cond -= 1;
            }
            if Some(seq) == watched {
                debug_assert!(e.mispredicted);
                watched_resolved = true;
            }
            // Wake the entries parked on this producer: each either becomes
            // ready (all deps now done) or re-parks on its other
            // still-outstanding dependence.
            while waiter != SEQ_NONE {
                let widx = (waiter & self.rob_mask) as usize;
                let next = std::mem::replace(&mut self.rob[widx].next_waiter, SEQ_NONE);
                let deps = self.rob[widx].deps;
                match deps.into_iter().find(|&d| !self.dep_done(d)) {
                    None => {
                        let pos = self.ready.partition_point(|&s| s < waiter);
                        self.ready.insert(pos, waiter);
                    }
                    Some(d) => self.park_waiter(d, waiter),
                }
                waiter = next;
            }
        }
        bucket.clear();
        self.buckets[(cycle & 3) as usize] = bucket;
        let mut retired = 0;
        while retired < self.cfg.issue_rate
            && self.front_seq < self.next_seq
            && self.rob[(self.front_seq & self.rob_mask) as usize].state == SState::Done
        {
            self.front_seq += 1;
            self.stats.retired += 1;
            retired += 1;
        }
        watched_resolved
    }

    /// Returns `true` if `d` no longer gates issue: no dependence, already
    /// retired, or completed in the ROB.
    fn dep_done(&self, d: u64) -> bool {
        d == SEQ_NONE
            || d < self.front_seq
            || self.rob[(d & self.rob_mask) as usize].state == SState::Done
    }

    /// Parks `seq` on `producer`'s waiter list; it is woken (and re-examined)
    /// when `producer` completes.
    fn park_waiter(&mut self, producer: u64, seq: u64) {
        let pidx = (producer & self.rob_mask) as usize;
        debug_assert_ne!(self.rob[pidx].state, SState::Done);
        let head = std::mem::replace(&mut self.rob[pidx].waiter_head, seq);
        self.rob[(seq & self.rob_mask) as usize].next_waiter = head;
    }

    /// Fires ready window entries into free functional units, oldest first.
    /// Returns `true` if a ready entry could not fire for lack of a unit —
    /// such an entry fires on the next cycle, so idle-cycle skipping must be
    /// suppressed.
    pub fn fire(&mut self, cycle: u64) -> bool {
        let mut avail = [
            self.cfg.fxu,
            self.cfg.fpu,
            self.cfg.branch_units,
            self.cfg.mem_units,
        ];
        let mut starved = false;
        let mut kept = 0;
        for r in 0..self.ready.len() {
            let seq = self.ready[r];
            let idx = (seq & self.rob_mask) as usize;
            let ci = match self.rob[idx].op.fu_class() {
                FuClass::Fxu => 0,
                FuClass::Fpu => 1,
                FuClass::Branch => 2,
                FuClass::Mem => 3,
            };
            if avail[ci] > 0 {
                avail[ci] -= 1;
                let e = &mut self.rob[idx];
                e.state = SState::Exec;
                let done_at = cycle + u64::from(e.op.latency());
                self.buckets[(done_at & 3) as usize].push((done_at, seq));
                self.pending += 1;
                self.in_window -= 1;
                continue;
            }
            starved = true;
            self.ready[kept] = seq;
            kept += 1;
        }
        self.ready.truncate(kept);
        starved
    }

    /// Returns `true` if both a window slot and a ROB slot are free.
    #[must_use]
    pub fn can_accept(&self) -> bool {
        self.in_window < self.cfg.window && self.next_seq - self.front_seq < u64::from(self.cfg.rob)
    }

    /// Dispatches one instruction, renaming its sources against the
    /// last-writer table. Returns the assigned sequence number.
    pub fn dispatch(
        &mut self,
        op: OpClass,
        dest: Option<fetchmech_isa::Reg>,
        srcs: [Option<fetchmech_isa::Reg>; 2],
        mispredicted: bool,
    ) -> u64 {
        debug_assert!(self.can_accept(), "dispatch into a full window/ROB");
        let seq = self.next_seq;
        self.next_seq += 1;
        let mut deps = [SEQ_NONE; 2];
        for (slot, src) in srcs.iter().enumerate() {
            if let Some(reg) = src {
                deps[slot] = self.last_writer[reg.file_index()];
            }
        }
        if let Some(dest) = dest {
            self.last_writer[dest.file_index()] = seq;
        }
        if op == OpClass::CondBranch {
            self.unresolved_cond += 1;
        }
        self.rob[(seq & self.rob_mask) as usize] = SEntry {
            op,
            mispredicted,
            deps,
            state: SState::InWindow,
            waiter_head: SEQ_NONE,
            next_waiter: SEQ_NONE,
        };
        self.in_window += 1;
        // `seq` is the newest entry, so a plain push keeps `ready` sorted.
        match deps.into_iter().find(|&d| !self.dep_done(d)) {
            None => self.ready.push(seq),
            Some(d) => self.park_waiter(d, seq),
        }
        self.stats.dispatched += 1;
        seq
    }

    /// Records `n` cycles in which dispatch was blocked by a full window.
    pub fn note_window_full(&mut self, n: u64) {
        self.stats.window_full_cycles += n;
    }

    /// The earliest cycle at which an in-flight instruction completes, if
    /// any instruction is executing.
    #[must_use]
    pub fn next_completion(&self) -> Option<u64> {
        if self.pending == 0 {
            return None;
        }
        self.buckets
            .iter()
            .flat_map(|b| b.iter().map(|&(done_at, _)| done_at))
            .min()
    }

    /// Returns `true` if the front ROB entry has completed and will retire
    /// on the next [`begin_cycle`](Self::begin_cycle) — cycles with a
    /// retirable backlog cannot be skipped.
    #[must_use]
    pub fn front_retirable(&self) -> bool {
        self.front_seq < self.next_seq
            && self.rob[(self.front_seq & self.rob_mask) as usize].state == SState::Done
    }

    /// Number of dispatched conditional branches not yet executed.
    #[must_use]
    pub fn unresolved_cond(&self) -> u32 {
        self.unresolved_cond
    }

    /// Returns `true` when no instructions remain in flight.
    #[must_use]
    pub fn drained(&self) -> bool {
        self.front_seq == self.next_seq
    }

    /// Returns core statistics.
    #[must_use]
    pub fn stats(&self) -> OooStats {
        self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fetchmech_isa::{Addr, DynCtrl, DynInst, Reg};

    fn cfg() -> OooConfig {
        OooConfig {
            issue_rate: 4,
            window: 16,
            rob: 32,
            fxu: 2,
            fpu: 2,
            branch_units: 2,
            mem_units: 2,
        }
    }

    fn alu(dest: Option<Reg>, srcs: [Option<Reg>; 2]) -> FetchedInst {
        FetchedInst {
            inst: DynInst::simple(Addr::new(0x1000), OpClass::IntAlu, dest, srcs),
            mispredicted: false,
        }
    }

    fn fp(dest: Option<Reg>, srcs: [Option<Reg>; 2]) -> FetchedInst {
        FetchedInst {
            inst: DynInst::simple(Addr::new(0x1000), OpClass::FpAdd, dest, srcs),
            mispredicted: false,
        }
    }

    fn branch(mispredicted: bool) -> FetchedInst {
        FetchedInst {
            inst: DynInst {
                addr: Addr::new(0x1000),
                op: OpClass::CondBranch,
                dest: None,
                srcs: [None, None],
                next_pc: Addr::new(0x1004),
                ctrl: Some(DynCtrl {
                    branch_id: None,
                    taken: false,
                    target: Addr::new(0x2000),
                    link: None,
                }),
            },
            mispredicted,
        }
    }

    /// Runs the core until drained, dispatching `insts` as space allows.
    /// Returns total cycles.
    fn run_to_drain(core: &mut OooCore, insts: &[FetchedInst]) -> u64 {
        let mut cycle = 0u64;
        let mut next = 0;
        loop {
            core.begin_cycle(cycle);
            core.fire(cycle);
            let mut dispatched = 0;
            while next < insts.len() && dispatched < core.config().issue_rate && core.can_accept() {
                core.dispatch(&insts[next]);
                next += 1;
                dispatched += 1;
            }
            core.audit_invariants().expect("core invariants hold");
            cycle += 1;
            if next == insts.len() && core.drained() {
                break;
            }
            assert!(cycle < 10_000, "runaway test");
        }
        cycle
    }

    #[test]
    fn independent_alus_bounded_by_fxu_count() {
        // 2 FXUs, 40 independent ALU ops: steady state fires 2/cycle.
        let mut core = OooCore::new(cfg());
        let insts: Vec<_> = (0..40).map(|_| alu(None, [None, None])).collect();
        let cycles = run_to_drain(&mut core, &insts);
        assert_eq!(core.stats().retired, 40);
        let ipc = 40.0 / cycles as f64;
        assert!(ipc > 1.5 && ipc <= 2.0, "ipc = {ipc}");
    }

    #[test]
    fn dependence_chain_serializes() {
        // r1 <- r1 chain: one per cycle regardless of unit count.
        let mut core = OooCore::new(cfg());
        let r = Reg::int(1);
        let insts: Vec<_> = (0..20).map(|_| alu(Some(r), [Some(r), None])).collect();
        let cycles = run_to_drain(&mut core, &insts);
        assert!(
            cycles >= 20,
            "chain of 20 must take >= 20 cycles, took {cycles}"
        );
    }

    #[test]
    fn fp_chain_pays_two_cycle_latency() {
        let mut core = OooCore::new(cfg());
        let f = Reg::fp(1);
        let insts: Vec<_> = (0..10).map(|_| fp(Some(f), [Some(f), None])).collect();
        let cycles = run_to_drain(&mut core, &insts);
        assert!(
            cycles >= 20,
            "10 dependent 2-cycle ops must take >= 20 cycles, took {cycles}"
        );
    }

    #[test]
    fn independent_mixed_ops_use_parallel_units() {
        // 2 FXU + 2 FPU + 2 MEM: 6 independent ops per cycle possible, but
        // retire width 4 caps IPC at 4.
        let mut core = OooCore::new(cfg());
        let mut insts = Vec::new();
        for _ in 0..10 {
            insts.push(alu(None, [None, None]));
            insts.push(alu(None, [None, None]));
            insts.push(fp(None, [None, None]));
            insts.push(fp(None, [None, None]));
        }
        let cycles = run_to_drain(&mut core, &insts);
        let ipc = 40.0 / cycles as f64;
        assert!(ipc > 3.0 && ipc <= 4.0, "ipc = {ipc}");
    }

    #[test]
    fn resolution_event_carries_mispredict_flag() {
        let mut core = OooCore::new(cfg());
        core.begin_cycle(0);
        core.fire(0);
        core.dispatch(&branch(true));
        // Cycle 1: branch fires (latency 1 -> done at 2).
        core.begin_cycle(1);
        core.fire(1);
        assert_eq!(core.unresolved_cond(), 1);
        // Cycle 2: resolution event.
        let resolved = core.begin_cycle(2);
        assert_eq!(resolved.len(), 1);
        assert!(resolved[0].mispredicted);
        assert_eq!(core.unresolved_cond(), 0);
    }

    #[test]
    fn retirement_is_in_order() {
        // An FP op (2-cycle) followed by an ALU op (1-cycle): the ALU op
        // finishes first but must not retire before the FP op.
        let mut core = OooCore::new(cfg());
        core.begin_cycle(0);
        core.fire(0);
        let fp_seq = core.dispatch(&fp(Some(Reg::fp(1)), [None, None]));
        let alu_seq = core.dispatch(&alu(Some(Reg::int(1)), [None, None]));
        assert!(fp_seq < alu_seq);
        core.begin_cycle(1);
        core.fire(1); // both fire: fp done at 3, alu done at 2
        core.begin_cycle(2); // alu done, fp not: nothing retires
        assert_eq!(core.stats().retired, 0);
        core.fire(2);
        core.begin_cycle(3); // fp done: both retire
        assert_eq!(core.stats().retired, 2);
        assert!(core.drained());
    }

    #[test]
    fn window_capacity_blocks_dispatch() {
        let small = OooConfig {
            issue_rate: 4,
            window: 2,
            rob: 32,
            fxu: 1,
            fpu: 1,
            branch_units: 1,
            mem_units: 1,
        };
        let mut core = OooCore::new(small);
        // Two instructions waiting on a never-completing producer? Not
        // possible here — instead fill the window with dependent ops that
        // cannot fire yet.
        let r = Reg::int(1);
        core.begin_cycle(0);
        core.fire(0);
        core.dispatch(&alu(Some(r), [Some(r), None]));
        core.dispatch(&alu(Some(r), [Some(r), None]));
        assert!(!core.can_accept(), "window of 2 must be full");
    }

    #[test]
    fn rob_capacity_blocks_dispatch() {
        let tiny = OooConfig {
            issue_rate: 4,
            window: 16,
            rob: 3,
            fxu: 2,
            fpu: 2,
            branch_units: 2,
            mem_units: 2,
        };
        let mut core = OooCore::new(tiny);
        core.begin_cycle(0);
        core.fire(0);
        for _ in 0..3 {
            assert!(core.can_accept());
            core.dispatch(&alu(None, [None, None]));
        }
        assert!(!core.can_accept(), "ROB of 3 must be full");
    }

    #[test]
    fn dep_on_retired_producer_is_satisfied() {
        let mut core = OooCore::new(cfg());
        let r = Reg::int(1);
        core.begin_cycle(0);
        core.fire(0);
        core.dispatch(&alu(Some(r), [None, None]));
        // Let the producer execute and retire fully.
        for c in 1..5 {
            core.begin_cycle(c);
            core.fire(c);
        }
        assert!(core.drained());
        // A consumer dispatched later must still fire.
        core.dispatch(&alu(None, [Some(r), None]));
        core.begin_cycle(5);
        core.fire(5);
        let resolved = core.begin_cycle(6);
        assert!(resolved.is_empty());
        assert!(core.drained());
        assert_eq!(core.stats().retired, 2);
    }

    #[test]
    fn stream_core_matches_ooo_core_in_lockstep() {
        // Drive OooCore and StreamCore with an identical per-cycle policy
        // over a deterministic pseudo-random instruction mix and demand
        // cycle-exact agreement on every observable.
        let mut rng = fetchmech_isa::rng::Pcg64::new(0x5eed_cafe);
        for trial in 0..20 {
            let n = 50 + (rng.next_u64() % 200) as usize;
            let insts: Vec<FetchedInst> = (0..n)
                .map(|_| {
                    let r = rng.next_u64();
                    let op = match r % 8 {
                        0 | 1 => OpClass::IntAlu,
                        2 => OpClass::FpAdd,
                        3 => OpClass::FpMul,
                        4 => OpClass::Load,
                        5 => OpClass::Store,
                        6 => OpClass::CondBranch,
                        _ => OpClass::Jump,
                    };
                    let dest =
                        (!(r >> 8).is_multiple_of(3)).then(|| Reg::int(((r >> 16) % 8) as u8));
                    let src = |shift: u32| {
                        (r >> shift)
                            .is_multiple_of(2)
                            .then(|| Reg::int(((r >> (shift + 4)) % 8) as u8))
                    };
                    let ctrl = op.is_control().then_some(DynCtrl {
                        branch_id: None,
                        taken: r.is_multiple_of(2),
                        target: Addr::new(0x2000),
                        link: None,
                    });
                    FetchedInst {
                        inst: DynInst {
                            addr: Addr::new(0x1000),
                            op,
                            dest,
                            srcs: [src(24), src(32)],
                            next_pc: Addr::new(0x1004),
                            ctrl,
                        },
                        mispredicted: false,
                    }
                })
                .collect();

            let mut a = OooCore::new(cfg());
            let mut b = StreamCore::new(cfg());
            let mut next = 0;
            let mut cycle = 0u64;
            loop {
                let resolved = a.begin_cycle(cycle);
                b.begin_cycle(cycle, None);
                let _ = resolved;
                a.fire(cycle);
                b.fire(cycle);
                let mut dispatched = 0;
                while next < insts.len() && dispatched < a.config().issue_rate && a.can_accept() {
                    assert!(
                        b.can_accept(),
                        "trial {trial} cycle {cycle}: accept mismatch"
                    );
                    let sa = a.dispatch(&insts[next]);
                    let i = &insts[next].inst;
                    let sb = b.dispatch(i.op, i.dest, i.srcs, false);
                    assert_eq!(sa, sb);
                    next += 1;
                    dispatched += 1;
                }
                assert_eq!(
                    a.can_accept(),
                    b.can_accept(),
                    "trial {trial} cycle {cycle}"
                );
                assert_eq!(
                    a.unresolved_cond(),
                    b.unresolved_cond(),
                    "trial {trial} cycle {cycle}"
                );
                assert_eq!(a.drained(), b.drained(), "trial {trial} cycle {cycle}");
                a.audit_invariants().expect("oracle invariants");
                cycle += 1;
                if next == insts.len() && a.drained() {
                    break;
                }
                assert!(cycle < 100_000, "runaway trial {trial}");
            }
            assert_eq!(a.stats().retired, b.stats().retired, "trial {trial}");
            assert_eq!(a.stats().dispatched, b.stats().dispatched);
            assert!(b.drained());
            assert_eq!(b.next_completion(), None);
            assert!(!b.front_retirable());
        }
    }

    #[test]
    fn stream_core_starved_fire_is_reported() {
        let tight = OooConfig {
            issue_rate: 4,
            window: 16,
            rob: 32,
            fxu: 1,
            fpu: 1,
            branch_units: 1,
            mem_units: 1,
        };
        let mut core = StreamCore::new(tight);
        core.begin_cycle(0, None);
        assert!(!core.fire(0), "empty window is not starved");
        // Two independent ALU ops, one FXU: the second is ready but starved.
        core.dispatch(OpClass::IntAlu, None, [None, None], false);
        core.dispatch(OpClass::IntAlu, None, [None, None], false);
        core.begin_cycle(1, None);
        assert!(
            core.fire(1),
            "ready entry denied a unit must report starved"
        );
        assert_eq!(core.next_completion(), Some(2));
        core.begin_cycle(2, None);
        assert!(!core.fire(2), "lone remaining op fires unstarved");
    }

    #[test]
    #[should_panic(expected = "full")]
    fn dispatch_into_full_rob_panics() {
        let tiny = OooConfig {
            issue_rate: 1,
            window: 1,
            rob: 1,
            fxu: 1,
            fpu: 1,
            branch_units: 1,
            mem_units: 1,
        };
        let mut core = OooCore::new(tiny);
        let r = Reg::int(1);
        core.dispatch(&alu(Some(r), [Some(r), None]));
        core.dispatch(&alu(None, [None, None]));
    }
}
