//! Machine models: the P14, P18, and P112 configurations of Table 1.

use std::fmt;

use fetchmech_bpred::{BtbConfig, PredictorKind};
use fetchmech_cache::CacheConfig;

use crate::ooo::OooConfig;

/// A complete machine configuration (Table 1 of the paper, plus the
/// parameters the paper leaves unspecified — see DESIGN.md §1).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MachineModel {
    /// Model name ("P14", "P18", "P112", or a custom label).
    pub name: String,
    /// Instructions issued (dispatched and retired) per cycle.
    pub issue_rate: u32,
    /// Scheduling-window (reservation station) entries.
    pub window: u32,
    /// Reorder-buffer entries (2× window by default).
    pub rob: u32,
    /// Instruction-cache capacity in bytes.
    pub icache_bytes: u64,
    /// Instruction-cache block size in bytes (one issue-width of
    /// instructions).
    pub block_bytes: u64,
    /// Fixed-point units.
    pub fxu: u32,
    /// Floating-point units.
    pub fpu: u32,
    /// Branch units.
    pub branch_units: u32,
    /// Load/store (data-cache interface) units.
    pub mem_units: u32,
    /// Maximum unresolved predicted conditional branches fetch may run ahead
    /// of ("speculates beyond N branches").
    pub spec_depth: u32,
    /// Branch-target-buffer entries.
    pub btb_entries: usize,
    /// Fetch-pipeline misprediction penalty in cycles (2 with the BTB→cache
    /// bypass; 3 models the shifter-based collapsing buffer of Figure 11).
    pub fetch_penalty: u32,
    /// Instruction-cache miss penalty in cycles.
    pub icache_miss_penalty: u32,
    /// Direction predictor for conditional branches (targets always come
    /// from the BTB). The paper's machines use [`PredictorKind::TwoBitBtb`];
    /// the gshare option implements the concluding remarks' "more
    /// sophisticated predictor" study.
    pub predictor: PredictorKind,
    /// Return-address-stack entries; `0` (the paper's machines) disables it
    /// and returns are predicted through the BTB like any other transfer.
    pub ras_entries: u32,
}

impl MachineModel {
    /// The P14 model: 4-issue, 16-entry window, 32 KB I-cache with 16 B
    /// blocks, 2 FXU / 2 FPU / 2 BR, speculation beyond 2 branches.
    #[must_use]
    pub fn p14() -> Self {
        Self::scaled("P14", 4, 16, 32 * 1024, 2, 2)
    }

    /// The P18 model: 8-issue, 24-entry window, 64 KB I-cache with 32 B
    /// blocks, 4 FXU / 4 FPU / 4 BR, speculation beyond 4 branches.
    #[must_use]
    pub fn p18() -> Self {
        Self::scaled("P18", 8, 24, 64 * 1024, 4, 4)
    }

    /// The P112 model: 12-issue, 32-entry window, 128 KB I-cache with 64 B
    /// blocks, 6 FXU / 6 FPU / 6 BR, speculation beyond 6 branches.
    #[must_use]
    pub fn p112() -> Self {
        Self::scaled("P112", 12, 32, 128 * 1024, 6, 6)
    }

    fn scaled(
        name: &str,
        issue_rate: u32,
        window: u32,
        icache_bytes: u64,
        units: u32,
        spec_depth: u32,
    ) -> Self {
        Self {
            name: name.to_owned(),
            issue_rate,
            window,
            rob: window * 2,
            icache_bytes,
            // A block holds at least the issue rate of instructions, rounded
            // up to a power of two (P112: 12 instructions -> 64 B blocks).
            block_bytes: (u64::from(issue_rate) * fetchmech_isa::WORD_BYTES).next_power_of_two(),
            fxu: units,
            fpu: units,
            branch_units: units,
            mem_units: units,
            spec_depth,
            btb_entries: 1024,
            fetch_penalty: 2,
            icache_miss_penalty: 10,
            predictor: PredictorKind::TwoBitBtb,
            ras_entries: 0,
        }
    }

    /// All three paper models, in issue-rate order.
    #[must_use]
    pub fn paper_models() -> Vec<MachineModel> {
        vec![Self::p14(), Self::p18(), Self::p112()]
    }

    /// Looks up a paper model by name, case-insensitively (`"p14"`, `"P18"`,
    /// `"p112"`, …) — the single parser behind every CLI/API `--machine`
    /// option.
    #[must_use]
    pub fn by_name(name: &str) -> Option<MachineModel> {
        Self::paper_models()
            .into_iter()
            .find(|m| m.name.eq_ignore_ascii_case(name))
    }

    /// Instructions per cache block (equals the issue rate for the paper
    /// models).
    #[must_use]
    pub fn insts_per_block(&self) -> u32 {
        (self.block_bytes / fetchmech_isa::WORD_BYTES) as u32
    }

    /// The out-of-order core configuration for this machine.
    #[must_use]
    pub fn ooo_config(&self) -> OooConfig {
        OooConfig {
            issue_rate: self.issue_rate,
            window: self.window,
            rob: self.rob,
            fxu: self.fxu,
            fpu: self.fpu,
            branch_units: self.branch_units,
            mem_units: self.mem_units,
        }
    }

    /// The instruction-cache configuration with the given bank count.
    #[must_use]
    pub fn cache_config(&self, banks: u32) -> CacheConfig {
        CacheConfig::new(self.icache_bytes, self.block_bytes, banks)
    }

    /// The BTB configuration (1024 entries, 2-bit counters, interleaved by
    /// instructions-per-block).
    #[must_use]
    pub fn btb_config(&self) -> BtbConfig {
        BtbConfig {
            entries: self.btb_entries,
            counter_bits: 2,
            interleave: self.insts_per_block(),
        }
    }

    /// Maximum conditional branches a single packet can contain with no
    /// unresolved branches in flight: fetch admits an instruction while
    /// `unresolved + conds_in_packet <= spec_depth`, so the packet holds up
    /// to `spec_depth + 1` conditionals (the last one ends it).
    #[must_use]
    pub fn max_packet_conds(&self) -> u32 {
        self.spec_depth + 1
    }

    /// Number of cache blocks a run of `insts` instructions starting at
    /// `start` touches (zero-length runs touch none).
    #[must_use]
    pub fn lines_spanned(&self, start: fetchmech_isa::Addr, insts: u64) -> u64 {
        if insts == 0 {
            return 0;
        }
        let last = start.add_words(insts - 1);
        last.block_index(self.block_bytes) - start.block_index(self.block_bytes) + 1
    }

    /// Maximum instructions `scheme` can deliver in one cycle on a
    /// straight-line (taken-branch-free, all-hit) run starting `offset_words`
    /// into a cache block: the bandwidth cap, limited by one block for
    /// sequential and by an aligned pair for the two-bank schemes (on a
    /// straight-line run the banked schemes' predicted successor is the next
    /// sequential block, whose bank parity always differs).
    #[must_use]
    pub fn straight_line_packet(&self, scheme: crate::SchemeKind, offset_words: u64) -> u32 {
        let w = u64::from(self.insts_per_block());
        let avail = match scheme.max_packet_blocks() {
            Some(1) => w - offset_words % w,
            Some(_) => 2 * w - offset_words % w,
            None => u64::from(self.issue_rate),
        };
        avail.min(u64::from(self.issue_rate)) as u32
    }

    /// Returns this model with a different fetch misprediction penalty
    /// (used by the Figure 11 shifter-implementation study).
    #[must_use]
    pub fn with_fetch_penalty(mut self, penalty: u32) -> Self {
        self.fetch_penalty = penalty;
        self
    }

    /// Returns this model with a different conditional-branch direction
    /// predictor (the concluding remarks' future-work study).
    #[must_use]
    pub fn with_predictor(mut self, predictor: PredictorKind) -> Self {
        self.predictor = predictor;
        self
    }

    /// Returns this model with a return-address stack of `entries` slots
    /// (an era-appropriate extension the paper's machines lack).
    #[must_use]
    pub fn with_ras(mut self, entries: u32) -> Self {
        self.ras_entries = entries;
        self
    }
}

impl fmt::Display for MachineModel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}: {}-issue, window {}, {}KB I-cache ({}B blocks), {}F/{}FP/{}BR, spec {}",
            self.name,
            self.issue_rate,
            self.window,
            self.icache_bytes / 1024,
            self.block_bytes,
            self.fxu,
            self.fpu,
            self.branch_units,
            self.spec_depth
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_parameters() {
        let p14 = MachineModel::p14();
        assert_eq!(p14.issue_rate, 4);
        assert_eq!(p14.window, 16);
        assert_eq!(p14.icache_bytes, 32 * 1024);
        assert_eq!(p14.block_bytes, 16);
        assert_eq!((p14.fxu, p14.fpu, p14.branch_units), (2, 2, 2));
        assert_eq!(p14.spec_depth, 2);

        let p18 = MachineModel::p18();
        assert_eq!(p18.issue_rate, 8);
        assert_eq!(p18.window, 24);
        assert_eq!(p18.block_bytes, 32);
        assert_eq!(p18.spec_depth, 4);

        let p112 = MachineModel::p112();
        assert_eq!(p112.issue_rate, 12);
        assert_eq!(p112.window, 32);
        assert_eq!(p112.icache_bytes, 128 * 1024);
        assert_eq!(p112.block_bytes, 64);
        assert_eq!((p112.fxu, p112.fpu, p112.branch_units), (6, 6, 6));
        assert_eq!(p112.spec_depth, 6);
    }

    #[test]
    fn block_holds_at_least_issue_width() {
        for m in MachineModel::paper_models() {
            assert!(m.insts_per_block() >= m.issue_rate, "{}", m.name);
        }
        assert_eq!(MachineModel::p112().insts_per_block(), 16);
    }

    #[test]
    fn btb_is_paper_config() {
        let c = MachineModel::p18().btb_config();
        assert_eq!(c.entries, 1024);
        assert_eq!(c.counter_bits, 2);
        assert_eq!(c.interleave, 8);
    }

    #[test]
    fn with_fetch_penalty_overrides() {
        let m = MachineModel::p14().with_fetch_penalty(3);
        assert_eq!(m.fetch_penalty, 3);
    }

    #[test]
    fn display_mentions_name() {
        assert!(MachineModel::p112().to_string().contains("P112"));
    }
}
