//! Property tests for the out-of-order core: conservation, bounds, and
//! in-order retirement over random instruction mixes.

use fetchmech_isa::{Addr, DynCtrl, DynInst, OpClass, Reg};
use fetchmech_pipeline::{FetchedInst, OooConfig, OooCore};
use proptest::prelude::*;

fn arb_config() -> impl Strategy<Value = OooConfig> {
    (1u32..13, 2u32..33, 1u32..5).prop_map(|(issue, window, units)| OooConfig {
        issue_rate: issue,
        window,
        rob: window * 2,
        fxu: units,
        fpu: units,
        branch_units: units,
        mem_units: units,
    })
}

#[derive(Debug, Clone, Copy)]
struct Gen {
    kind: u8,
    dest: u8,
    src: u8,
}

fn arb_insts() -> impl Strategy<Value = Vec<Gen>> {
    proptest::collection::vec(
        (0u8..6, 0u8..24, 0u8..24).prop_map(|(kind, dest, src)| Gen { kind, dest, src }),
        1..300,
    )
}

fn materialize(g: Gen, addr_word: u64) -> FetchedInst {
    let addr = Addr::from_word_index(addr_word);
    let dest = Some(Reg::int(1 + g.dest % 24));
    let src = Some(Reg::int(1 + g.src % 24));
    let inst = match g.kind {
        0 | 1 => DynInst::simple(addr, OpClass::IntAlu, dest, [src, None]),
        2 => DynInst::simple(
            addr,
            OpClass::FpAdd,
            Some(Reg::fp(g.dest % 24)),
            [Some(Reg::fp(g.src % 24)), None],
        ),
        3 => DynInst::simple(addr, OpClass::Load, dest, [src, None]),
        4 => DynInst::simple(addr, OpClass::Store, None, [dest, src]),
        _ => DynInst {
            addr,
            op: OpClass::CondBranch,
            dest: None,
            srcs: [src, None],
            next_pc: addr.add_words(1),
            ctrl: Some(DynCtrl {
                branch_id: None,
                taken: false,
                target: addr.add_words(16),
                link: None,
            }),
        },
    };
    FetchedInst {
        inst,
        mispredicted: false,
    }
}

proptest! {
    /// Every dispatched instruction eventually retires; total cycles stay
    /// within an issue-rate-derived bound; the unresolved-branch counter
    /// returns to zero.
    #[test]
    fn conservation_and_bounds(cfg in arb_config(), gens in arb_insts()) {
        let insts: Vec<FetchedInst> =
            gens.iter().enumerate().map(|(i, &g)| materialize(g, i as u64)).collect();
        let mut core = OooCore::new(cfg);
        let mut cycle = 0u64;
        let mut next = 0usize;
        let mut max_unresolved = 0;
        loop {
            core.begin_cycle(cycle);
            core.fire(cycle);
            let mut d = 0;
            while next < insts.len() && d < cfg.issue_rate && core.can_accept() {
                core.dispatch(&insts[next]);
                next += 1;
                d += 1;
            }
            max_unresolved = max_unresolved.max(core.unresolved_cond());
            cycle += 1;
            if next == insts.len() && core.drained() {
                break;
            }
            prop_assert!(cycle < 40 * insts.len() as u64 + 1000, "runaway core");
        }
        prop_assert_eq!(core.stats().retired, insts.len() as u64);
        prop_assert_eq!(core.stats().dispatched, insts.len() as u64);
        prop_assert_eq!(core.unresolved_cond(), 0);
        // Lower bound: with W-wide retire, N instructions need >= N/W cycles.
        let floor = insts.len() as u64 / u64::from(cfg.issue_rate);
        prop_assert!(cycle >= floor, "cycle {cycle} below retire floor {floor}");
    }

    /// The window is a hard bound: at no point can more than `window`
    /// dispatched-but-unfired instructions exist. (Checked indirectly:
    /// dispatch is refused exactly when the window or ROB is full, so the
    /// core must never panic and always make progress.)
    #[test]
    fn tiny_windows_never_deadlock(gens in arb_insts()) {
        let cfg = OooConfig {
            issue_rate: 2,
            window: 2,
            rob: 3,
            fxu: 1,
            fpu: 1,
            branch_units: 1,
            mem_units: 1,
        };
        let insts: Vec<FetchedInst> =
            gens.iter().enumerate().map(|(i, &g)| materialize(g, i as u64)).collect();
        let mut core = OooCore::new(cfg);
        let mut cycle = 0u64;
        let mut next = 0usize;
        loop {
            core.begin_cycle(cycle);
            core.fire(cycle);
            while next < insts.len() && core.can_accept() {
                core.dispatch(&insts[next]);
                next += 1;
            }
            cycle += 1;
            if next == insts.len() && core.drained() {
                break;
            }
            prop_assert!(cycle < 100 * insts.len() as u64 + 1000, "deadlock");
        }
        prop_assert_eq!(core.stats().retired, insts.len() as u64);
    }
}
