//! Flat WebAssembly-text frontend.
//!
//! Accepts a deliberately small WAT subset: a `(module ...)` of flat
//! `(func $name ...)` bodies — instructions written one per line, not
//! folded s-expressions. Structured control (`block $l` / `loop $l` /
//! `br_if $l` / `br $l` / `end`) is lowered to labeled basic blocks with
//! conditional branches:
//!
//! * `block $l` targets its **end** (forward branch), `loop $l` targets its
//!   **head** (backward branch), exactly as in WebAssembly.
//! * `br_if $l` pops the condition and becomes a two-way branch whose
//!   fall-through continues in a synthesized block.
//! * Branch behaviour is annotated in a comment immediately after the
//!   `br_if`: `;; @loop=20`, `;; @p=0.1`, `;; @fixed=8`,
//!   `;; @pattern=1101:0.05` (the assembler grammar). Unannotated branches
//!   are even coin flips.
//!
//! Values are abstract. The operand stack is modeled as a stack of
//! registers: locals get dedicated registers (`r1..r15` / `f1..f15`),
//! intermediate stack slots rotate through `r16..r31` / `f16..f31`.
//! Numeric (depth-based) branch targets, folded expressions, and calls
//! that return values are out of scope and produce stable diagnostics.

use fetchmech_isa::{Inst, OpClass, Reg};
use fetchmech_workloads::BranchModel;

use crate::ir::{err, parse_model, BlockIr, FrontendError, FuncIr, Module, Term};

#[derive(Debug, Clone, PartialEq, Eq)]
enum Tok {
    LParen,
    RParen,
    Atom(String),
    /// `@...` behaviour annotation lifted out of a comment.
    Anno(String),
}

#[derive(Debug, Clone)]
struct Token {
    tok: Tok,
    line: usize,
}

fn tokenize(src: &str) -> Result<Vec<Token>, FrontendError> {
    let mut toks = Vec::new();
    let mut line = 1usize;
    let bytes: Vec<char> = src.chars().collect();
    let mut i = 0usize;
    let push_comment = |text: &str, line: usize, toks: &mut Vec<Token>| {
        let text = text.trim();
        if let Some(anno) = text.strip_prefix('@') {
            toks.push(Token {
                tok: Tok::Anno(anno.trim().to_owned()),
                line,
            });
        }
    };
    while i < bytes.len() {
        let c = bytes[i];
        match c {
            '\n' => {
                line += 1;
                i += 1;
            }
            c if c.is_whitespace() => i += 1,
            ';' if bytes.get(i + 1) == Some(&';') => {
                let start = i + 2;
                while i < bytes.len() && bytes[i] != '\n' {
                    i += 1;
                }
                let text: String = bytes[start..i].iter().collect();
                push_comment(&text, line, &mut toks);
            }
            '(' if bytes.get(i + 1) == Some(&';') => {
                let start_line = line;
                let start = i + 2;
                i += 2;
                loop {
                    if i + 1 >= bytes.len() {
                        return Err(err(start_line, "unterminated block comment"));
                    }
                    if bytes[i] == ';' && bytes[i + 1] == ')' {
                        break;
                    }
                    if bytes[i] == '\n' {
                        line += 1;
                    }
                    i += 1;
                }
                let text: String = bytes[start..i].iter().collect();
                push_comment(&text, start_line, &mut toks);
                i += 2;
            }
            '(' => {
                toks.push(Token {
                    tok: Tok::LParen,
                    line,
                });
                i += 1;
            }
            ')' => {
                toks.push(Token {
                    tok: Tok::RParen,
                    line,
                });
                i += 1;
            }
            '"' => {
                let start = i;
                i += 1;
                while i < bytes.len() && bytes[i] != '"' {
                    if bytes[i] == '\n' {
                        line += 1;
                    }
                    i += 1;
                }
                if i == bytes.len() {
                    return Err(err(line, "unterminated string"));
                }
                i += 1;
                let text: String = bytes[start..i].iter().collect();
                toks.push(Token {
                    tok: Tok::Atom(text),
                    line,
                });
            }
            _ => {
                let start = i;
                while i < bytes.len() {
                    let c = bytes[i];
                    if c.is_whitespace() || c == '(' || c == ')' || c == ';' || c == '"' {
                        break;
                    }
                    i += 1;
                }
                let text: String = bytes[start..i].iter().collect();
                toks.push(Token {
                    tok: Tok::Atom(text),
                    line,
                });
            }
        }
    }
    Ok(toks)
}

#[derive(Debug)]
struct Frame {
    /// User label (`$l`), empty when unlabeled.
    name: String,
    /// Block label a `br` to this frame jumps to (head for loops, the
    /// join block for blocks).
    target: String,
    /// Join label opened when the frame's `end` is reached (loops fall
    /// through here; for blocks it equals `target`).
    join: String,
}

/// Cursor over the token stream.
struct Cursor {
    toks: Vec<Token>,
    pos: usize,
}

impl Cursor {
    fn peek(&self) -> Option<&Token> {
        self.toks.get(self.pos)
    }

    fn next(&mut self) -> Option<Token> {
        let t = self.toks.get(self.pos).cloned();
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    fn last_line(&self) -> usize {
        self.toks.last().map_or(1, |t| t.line)
    }

    fn expect_lparen(&mut self, what: &str) -> Result<usize, FrontendError> {
        match self.next() {
            Some(Token {
                tok: Tok::LParen,
                line,
            }) => Ok(line),
            Some(t) => Err(err(t.line, format!("expected `(` to start {what}"))),
            None => Err(err(
                self.last_line(),
                format!("expected `(` to start {what}"),
            )),
        }
    }

    fn expect_atom(&mut self, what: &str) -> Result<(String, usize), FrontendError> {
        match self.next() {
            Some(Token {
                tok: Tok::Atom(a),
                line,
            }) => Ok((a, line)),
            Some(t) => Err(err(t.line, format!("expected {what}"))),
            None => Err(err(self.last_line(), format!("expected {what}"))),
        }
    }

    /// Skips a balanced `( ... )` whose `(` was already consumed.
    fn skip_group(&mut self, open_line: usize) -> Result<(), FrontendError> {
        let mut depth = 1usize;
        while depth > 0 {
            match self.next() {
                Some(Token {
                    tok: Tok::LParen, ..
                }) => depth += 1,
                Some(Token {
                    tok: Tok::RParen, ..
                }) => depth -= 1,
                Some(_) => {}
                None => return Err(err(open_line, "unbalanced parentheses")),
            }
        }
        Ok(())
    }
}

/// Per-function lowering state.
struct FuncBuilder {
    blocks: Vec<BlockIr>,
    frames: Vec<Frame>,
    /// Operand stack of abstract registers.
    stack: Vec<Reg>,
    /// `$name` → (register, fp?)
    locals: Vec<(String, Reg)>,
    next_int_local: u8,
    next_fp_local: u8,
    rot_int: u8,
    rot_fp: u8,
    next_label: usize,
    /// Index of the block holding the most recent `br_if`, for `@` comment
    /// annotations.
    last_cond: Option<usize>,
}

impl FuncBuilder {
    fn new() -> Self {
        let mut fb = FuncBuilder {
            blocks: Vec::new(),
            frames: Vec::new(),
            stack: Vec::new(),
            locals: Vec::new(),
            next_int_local: 0,
            next_fp_local: 0,
            rot_int: 0,
            rot_fp: 0,
            next_label: 0,
            last_cond: None,
        };
        fb.open("entry".to_owned(), 0);
        fb
    }

    fn fresh_label(&mut self) -> String {
        let l = format!(".L{}", self.next_label);
        self.next_label += 1;
        l
    }

    fn open(&mut self, label: String, line: usize) {
        self.blocks.push(BlockIr {
            line,
            label,
            insts: Vec::new(),
            term: None,
        });
    }

    fn cur(&mut self) -> &mut BlockIr {
        self.blocks.last_mut().expect("a block is always open")
    }

    fn terminated(&self) -> bool {
        self.blocks.last().is_some_and(|b| b.term.is_some())
    }

    fn define_local(&mut self, name: &str, fp: bool, line: usize) -> Result<(), FrontendError> {
        if self.locals.iter().any(|(n, _)| n == name) {
            return Err(err(line, format!("duplicate local {name}")));
        }
        let reg = if fp {
            if self.next_fp_local >= 15 {
                return Err(err(
                    line,
                    "too many f64 locals (the frontend models at most 15)",
                ));
            }
            self.next_fp_local += 1;
            Reg::fp(self.next_fp_local)
        } else {
            if self.next_int_local >= 15 {
                return Err(err(
                    line,
                    "too many i32 locals (the frontend models at most 15)",
                ));
            }
            self.next_int_local += 1;
            Reg::int(self.next_int_local)
        };
        self.locals.push((name.to_owned(), reg));
        Ok(())
    }

    fn local(&self, name: &str, line: usize) -> Result<Reg, FrontendError> {
        self.locals
            .iter()
            .find(|(n, _)| n == name)
            .map(|&(_, r)| r)
            .ok_or_else(|| err(line, format!("unknown local {name}")))
    }

    /// A fresh scratch register for a stack slot, rotating through the
    /// upper half of the file.
    fn scratch(&mut self, fp: bool) -> Reg {
        if fp {
            let r = Reg::fp(16 + self.rot_fp % 16);
            self.rot_fp = self.rot_fp.wrapping_add(1);
            r
        } else {
            let r = Reg::int(16 + self.rot_int % 16);
            self.rot_int = self.rot_int.wrapping_add(1);
            r
        }
    }

    fn pop(&mut self, what: &str, line: usize) -> Result<Reg, FrontendError> {
        self.stack
            .pop()
            .ok_or_else(|| err(line, format!("operand stack underflow in {what}")))
    }

    /// Finds the frame a `$label` branch targets.
    fn frame_target(&self, label: &str, line: usize) -> Result<String, FrontendError> {
        if label.parse::<u32>().is_ok() {
            return Err(err(
                line,
                "numeric branch targets are not supported; label the block/loop with $name",
            ));
        }
        self.frames
            .iter()
            .rev()
            .find(|f| f.name == label)
            .map(|f| f.target.clone())
            .ok_or_else(|| err(line, format!("no enclosing block/loop labeled {label}")))
    }
}

/// Parses the WAT subset into the frontend module IR.
pub(crate) fn parse(src: &str) -> Result<Module, FrontendError> {
    let mut cur = Cursor {
        toks: tokenize(src)?,
        pos: 0,
    };
    let open = cur.expect_lparen("the module")?;
    let (kw, kw_line) = cur.expect_atom("`module`")?;
    if kw != "module" {
        return Err(err(kw_line, format!("expected `module`, found `{kw}`")));
    }
    let mut module = Module::default();
    loop {
        match cur.next() {
            Some(Token {
                tok: Tok::RParen, ..
            }) => break,
            Some(Token {
                tok: Tok::LParen,
                line,
            }) => {
                let (kw, kw_line) = cur.expect_atom("a module field")?;
                if kw == "func" {
                    module.funcs.push(parse_func(&mut cur, kw_line)?);
                } else {
                    // (memory ...), (export ...), (type ...): irrelevant to
                    // fetch behaviour, skipped wholesale.
                    cur.skip_group(line)?;
                }
            }
            Some(t) => return Err(err(t.line, "expected a `(...)` module field")),
            None => return Err(err(open, "unterminated module")),
        }
    }
    if module.funcs.is_empty() {
        return Err(err(open, "module has no functions"));
    }
    Ok(module)
}

fn parse_func(cur: &mut Cursor, func_line: usize) -> Result<FuncIr, FrontendError> {
    let name = match cur.peek() {
        Some(Token {
            tok: Tok::Atom(a), ..
        }) if a.starts_with('$') => {
            let n = a[1..].to_owned();
            cur.next();
            n
        }
        _ => return Err(err(func_line, "func needs a $name")),
    };
    let mut fb = FuncBuilder::new();

    loop {
        let Some(t) = cur.next() else {
            return Err(err(func_line, format!("unterminated function {name}")));
        };
        match t.tok {
            Tok::RParen => break,
            Tok::LParen => {
                let (kw, kw_line) = cur.expect_atom("a declaration")?;
                match kw.as_str() {
                    "param" | "local" => {
                        // (param $x i32) / (local $y f64); plain (param i32)
                        // is rejected — the frontend needs names.
                        let (pname, pline) = cur.expect_atom("a $name")?;
                        let Some(pname) = pname.strip_prefix('$') else {
                            return Err(err(
                                pline,
                                format!("{kw} needs a $name (unnamed {kw}s are not supported)"),
                            ));
                        };
                        let (ty, tline) = cur.expect_atom("a value type")?;
                        let fp = match ty.as_str() {
                            "i32" | "i64" => false,
                            "f32" | "f64" => true,
                            other => {
                                return Err(err(tline, format!("unsupported value type {other}")))
                            }
                        };
                        fb.define_local(pname, fp, pline)?;
                        match cur.next() {
                            Some(Token {
                                tok: Tok::RParen, ..
                            }) => {}
                            _ => return Err(err(pline, format!("expected `)` after the {kw}"))),
                        }
                    }
                    "result" | "export" => cur.skip_group(kw_line)?,
                    other => {
                        return Err(err(
                            kw_line,
                            format!(
                                "folded expressions are not supported (found `({other} ...)`); \
                                 write the body flat, one instruction per line"
                            ),
                        ))
                    }
                }
            }
            Tok::Anno(anno) => {
                let model = parse_model(&anno, t.line)?;
                let Some(bi) = fb.last_cond else {
                    return Err(err(t.line, "behaviour annotation with no preceding br_if"));
                };
                match &mut fb.blocks[bi].term {
                    Some((_, Term::Cond { model: m, .. })) => *m = model,
                    _ => return Err(err(t.line, "behaviour annotation with no preceding br_if")),
                }
            }
            Tok::Atom(op) => instr(cur, &mut fb, &op, t.line)?,
        }
    }

    // Fell off the end of the function body: that is a return.
    if !fb.frames.is_empty() {
        return Err(err(
            func_line,
            format!("unclosed block/loop in function {name}"),
        ));
    }
    if !fb.terminated() {
        let line = fb.cur().line;
        fb.cur().term = Some((line, Term::Ret));
    }
    Ok(FuncIr {
        name,
        line: func_line,
        blocks: fb.blocks,
    })
}

/// Reads the optional `$label` operand of block/loop.
fn opt_label(cur: &mut Cursor) -> Option<String> {
    match cur.peek() {
        Some(Token {
            tok: Tok::Atom(a), ..
        }) if a.starts_with('$') => {
            let l = a.clone();
            cur.next();
            Some(l)
        }
        _ => None,
    }
}

#[allow(clippy::too_many_lines)]
fn instr(
    cur: &mut Cursor,
    fb: &mut FuncBuilder,
    op: &str,
    line: usize,
) -> Result<(), FrontendError> {
    if fb.terminated() && !matches!(op, "end") {
        return Err(err(line, format!("unreachable `{op}` after a terminator")));
    }
    match op {
        "block" | "loop" => {
            let name = opt_label(cur).unwrap_or_default();
            if op == "loop" {
                let head = fb.fresh_label();
                let join = fb.fresh_label();
                let prev_line = fb.cur().line;
                if !fb.terminated() {
                    fb.cur().term = Some((prev_line, Term::Fall(head.clone())));
                }
                fb.open(head.clone(), line);
                fb.frames.push(Frame {
                    name,
                    target: head,
                    join,
                });
            } else {
                let join = fb.fresh_label();
                fb.frames.push(Frame {
                    name,
                    target: join.clone(),
                    join,
                });
            }
        }
        "end" => {
            let Some(frame) = fb.frames.pop() else {
                return Err(err(line, "`end` with no open block/loop"));
            };
            if !fb.terminated() {
                let l = fb.cur().line;
                fb.cur().term = Some((l, Term::Fall(frame.join.clone())));
            }
            fb.open(frame.join, line);
        }
        "br_if" => {
            let (label, lline) = cur.expect_atom("a branch target after br_if")?;
            let target = fb.frame_target(&label, lline)?;
            let cond = fb.pop("br_if", line)?;
            let fall = fb.fresh_label();
            fb.cur().term = Some((
                line,
                Term::Cond {
                    srcs: [Some(cond), None],
                    taken: target,
                    fall: fall.clone(),
                    model: BranchModel::Bernoulli(0.5),
                },
            ));
            fb.last_cond = Some(fb.blocks.len() - 1);
            fb.open(fall, line);
        }
        "br" => {
            let (label, lline) = cur.expect_atom("a branch target after br")?;
            let target = fb.frame_target(&label, lline)?;
            fb.cur().term = Some((line, Term::Jump(target)));
        }
        "return" => {
            fb.cur().term = Some((line, Term::Ret));
        }
        "call" => {
            let (callee, cline) = cur.expect_atom("a $function after call")?;
            let Some(callee) = callee.strip_prefix('$') else {
                return Err(err(cline, "call needs a $function name"));
            };
            let ret = fb.fresh_label();
            fb.cur().term = Some((
                line,
                Term::Call {
                    callee: callee.to_owned(),
                    return_to: ret.clone(),
                },
            ));
            fb.open(ret, line);
        }
        "local.get" => {
            let (name, lline) = local_operand(cur, op)?;
            let reg = fb.local(&name, lline)?;
            fb.stack.push(reg);
        }
        "local.set" | "local.tee" => {
            let (name, lline) = local_operand(cur, op)?;
            let dest = fb.local(&name, lline)?;
            let val = fb.pop(op, line)?;
            let class = match dest {
                Reg::Int(_) => OpClass::IntAlu,
                Reg::Fp(_) => OpClass::FpAdd,
            };
            if matches!(dest, Reg::Fp(_)) != matches!(val, Reg::Fp(_)) {
                return Err(err(
                    line,
                    format!("type error: {op} ${name} from a mismatched operand class"),
                ));
            }
            fb.cur()
                .insts
                .push(Inst::new(class, Some(dest), [Some(val), None]));
            if op == "local.tee" {
                fb.stack.push(dest);
            }
        }
        "drop" => {
            fb.pop(op, line)?;
        }
        "nop" => fb.cur().insts.push(Inst::nop()),
        "i32.const" | "i64.const" | "f32.const" | "f64.const" => {
            let (v, _) = cur.expect_atom("a literal")?;
            let fp = op.starts_with('f');
            let imm = v
                .parse::<f64>()
                .map_err(|_| err(line, format!("bad literal {v:?}")))?
                .clamp(f64::from(i8::MIN), f64::from(i8::MAX)) as i8;
            let dest = fb.scratch(fp);
            let class = if fp { OpClass::FpAdd } else { OpClass::IntAlu };
            fb.cur()
                .insts
                .push(Inst::new(class, Some(dest), [None, None]).with_imm(imm));
            fb.stack.push(dest);
        }
        _ => {
            let (prefix, rest) = op
                .split_once('.')
                .ok_or_else(|| err(line, format!("unknown instruction `{op}`")))?;
            let fp = matches!(prefix, "f32" | "f64");
            if !fp && !matches!(prefix, "i32" | "i64") {
                return Err(err(line, format!("unknown instruction `{op}`")));
            }
            let (class, arity, pushes) = match rest {
                "add" | "sub" | "and" | "or" | "xor" | "shl" | "shr_s" | "shr_u" | "eq" | "ne"
                | "lt_s" | "lt_u" | "gt_s" | "gt_u" | "le_s" | "le_u" | "ge_s" | "ge_u" | "lt"
                | "gt" | "le" | "ge" => {
                    (if fp { OpClass::FpAdd } else { OpClass::IntAlu }, 2, true)
                }
                "mul" | "div" | "div_s" | "div_u" | "rem_s" | "rem_u" => {
                    (if fp { OpClass::FpMul } else { OpClass::IntMul }, 2, true)
                }
                "eqz" => (OpClass::IntAlu, 1, true),
                "neg" | "abs" | "sqrt" => (OpClass::FpAdd, 1, true),
                "load" => (OpClass::Load, 1, true),
                "store" => (OpClass::Store, 2, false),
                _ => return Err(err(line, format!("unknown instruction `{op}`"))),
            };
            let mut srcs = [None, None];
            for slot in (0..arity).rev() {
                srcs[slot] = Some(fb.pop(op, line)?);
            }
            // Comparisons and eqz produce i32 regardless of operand type.
            let dest_fp = fp && !matches!(rest, "eq" | "ne" | "lt" | "gt" | "le" | "ge" | "eqz");
            let dest = if pushes {
                let d = fb.scratch(dest_fp && class != OpClass::Load);
                fb.stack.push(d);
                Some(d)
            } else {
                None
            };
            fb.cur().insts.push(Inst::new(class, dest, srcs));
        }
    }
    Ok(())
}

fn local_operand(cur: &mut Cursor, op: &str) -> Result<(String, usize), FrontendError> {
    let (name, line) = cur.expect_atom(&format!("a $local after {op}"))?;
    match name.strip_prefix('$') {
        Some(n) => Ok((n.to_owned(), line)),
        None => Err(err(
            line,
            format!("{op} needs a $local name (numeric indices are not supported)"),
        )),
    }
}
