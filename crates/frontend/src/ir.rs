//! The shared frontend IR and its lowering to `fetchmech-isa`.
//!
//! Both parsers — Bril-style JSON ([`crate::bril`]) and flat WebAssembly
//! text ([`crate::wat`]) — produce the same [`Module`] of labeled blocks
//! with pending (label-referencing) terminators; [`lower`] then resolves
//! labels through one [`ProgramBuilder`] walk, allocating behaviour models
//! in [`BranchId`](fetchmech_isa::BranchId) order exactly like the
//! workloads assembler does, so the result executes through the existing
//! trace generator unchanged.
//!
//! # Lowering rules
//!
//! * Function 0 is `main`; its entry block is the program entry.
//! * A `ret` in `main` lowers to `halt`, so the executor's halt-restart
//!   semantics (deterministic behaviour-state reset) apply to external
//!   programs exactly as to generated ones.
//! * Calls lower to the ISA's [`Terminator::Call`] with the frontend-
//!   synthesized continuation block as `return_to`.
//! * Labels are function-scoped; the lowered label map qualifies them as
//!   `func.label`.

use std::collections::HashMap;
use std::fmt;

use fetchmech_isa::{BlockId, FuncId, Inst, Program, ProgramBuilder, Reg, ValidateError};
use fetchmech_workloads::{BehaviorMap, BranchModel};

/// A frontend diagnostic, with the 1-based source line when the format has
/// lines (WAT); structured formats (Bril JSON) use line 0 and carry the
/// function/instruction coordinates in the message instead.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FrontendError {
    /// 1-based line number (0 when the format is not line-oriented).
    pub line: usize,
    /// What went wrong.
    pub message: String,
}

impl fmt::Display for FrontendError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.line == 0 {
            f.write_str(&self.message)
        } else {
            write!(f, "line {}: {}", self.line, self.message)
        }
    }
}

impl std::error::Error for FrontendError {}

impl From<ValidateError> for FrontendError {
    fn from(e: ValidateError) -> Self {
        FrontendError {
            line: 0,
            message: format!("invalid program: {e:?}"),
        }
    }
}

/// Shorthand error constructor used across the frontend.
pub(crate) fn err(line: usize, message: impl Into<String>) -> FrontendError {
    FrontendError {
        line,
        message: message.into(),
    }
}

/// A block terminator before labels are resolvable.
#[derive(Debug, Clone)]
pub(crate) enum Term {
    /// Fall through to a labeled block of the same function.
    Fall(String),
    /// Conditional branch with its behaviour model.
    Cond {
        srcs: [Option<Reg>; 2],
        taken: String,
        fall: String,
        model: BranchModel,
    },
    /// Unconditional jump within the function.
    Jump(String),
    /// Call another function, resuming at `return_to`.
    Call { callee: String, return_to: String },
    /// Return to the caller (lowers to halt in `main`, so the executor's
    /// restart-at-entry semantics apply to external programs).
    Ret,
}

/// One labeled basic block of the frontend IR.
#[derive(Debug, Clone)]
pub(crate) struct BlockIr {
    /// Source line the block starts on (0 for structured formats).
    pub line: usize,
    /// Function-scoped label.
    pub label: String,
    pub insts: Vec<Inst>,
    /// Terminator plus the line it came from.
    pub term: Option<(usize, Term)>,
}

/// One function of the frontend IR.
#[derive(Debug, Clone)]
pub(crate) struct FuncIr {
    pub name: String,
    pub line: usize,
    pub blocks: Vec<BlockIr>,
}

/// A parsed module, ready for lowering.
#[derive(Debug, Clone, Default)]
pub(crate) struct Module {
    pub funcs: Vec<FuncIr>,
}

/// A lowered external program: the CFG, its branch behaviours, and the
/// qualified (`func.label`) label map for tests and tooling.
#[derive(Debug, Clone)]
pub struct LoweredProgram {
    /// The control-flow graph.
    pub program: Program,
    /// Behaviour of every conditional branch (annotation-driven; defaults
    /// to `Bernoulli(0.5)`).
    pub behaviors: BehaviorMap,
    /// `func.label` → block id.
    pub labels: HashMap<String, BlockId>,
}

impl LoweredProgram {
    /// A stable content hash over the CFG *and* the behaviour models — two
    /// uploads get the same fingerprint exactly when they simulate
    /// identically, which is what makes `prog-<hash>` ids safe to
    /// deduplicate under.
    #[must_use]
    pub fn fingerprint(&self) -> u64 {
        let mut h = self.program.fingerprint();
        let mix = |h: &mut u64, v: u64| {
            *h ^= v;
            *h = h.wrapping_mul(0x0000_0100_0000_01b3);
        };
        for i in 0..self.behaviors.len() {
            match self.behaviors.model(fetchmech_isa::BranchId(i as u32)) {
                BranchModel::Bernoulli(p) => {
                    mix(&mut h, 1);
                    mix(&mut h, p.to_bits());
                }
                BranchModel::Loop { mean_trips } => {
                    mix(&mut h, 2);
                    mix(&mut h, mean_trips.to_bits());
                }
                BranchModel::FixedLoop { trips } => {
                    mix(&mut h, 3);
                    mix(&mut h, trips);
                }
                BranchModel::Pattern { bits, len, noise } => {
                    mix(&mut h, 4);
                    mix(&mut h, u64::from(bits));
                    mix(&mut h, u64::from(len));
                    mix(&mut h, noise.to_bits());
                }
            }
        }
        h
    }
}

/// Lowers a parsed module to a validated program plus behaviours.
pub(crate) fn lower(module: &Module) -> Result<LoweredProgram, FrontendError> {
    if module.funcs.is_empty() {
        return Err(err(0, "module has no functions"));
    }
    for (i, f) in module.funcs.iter().enumerate() {
        if f.blocks.is_empty() {
            return Err(err(f.line, format!("function {:?} has no blocks", f.name)));
        }
        if module.funcs[..i].iter().any(|g| g.name == f.name) {
            return Err(err(f.line, format!("duplicate function {:?}", f.name)));
        }
    }

    let mut builder = ProgramBuilder::new();
    let func_ids: Vec<FuncId> = module.funcs.iter().map(|_| builder.begin_func()).collect();

    // First pass: allocate block ids, function-scoped label maps.
    let mut labels: HashMap<String, BlockId> = HashMap::new();
    let mut local: Vec<HashMap<&str, BlockId>> = Vec::with_capacity(module.funcs.len());
    let mut func_entries: HashMap<&str, BlockId> = HashMap::new();
    for (fi, f) in module.funcs.iter().enumerate() {
        let mut map = HashMap::new();
        for b in &f.blocks {
            if map.contains_key(b.label.as_str()) {
                return Err(err(
                    b.line,
                    format!(
                        "duplicate block label {:?} in function {:?}",
                        b.label, f.name
                    ),
                ));
            }
            let id = builder.new_block(func_ids[fi]);
            map.insert(b.label.as_str(), id);
            labels.insert(format!("{}.{}", f.name, b.label), id);
        }
        func_entries.insert(f.name.as_str(), map[f.blocks[0].label.as_str()]);
        local.push(map);
    }

    // Second pass: bodies and resolved terminators; models in BranchId order.
    let mut models: Vec<BranchModel> = Vec::new();
    for (fi, f) in module.funcs.iter().enumerate() {
        for b in &f.blocks {
            let id = local[fi][b.label.as_str()];
            for inst in &b.insts {
                builder.push_inst(id, *inst);
            }
            let (tline, term) = b.term.as_ref().ok_or_else(|| {
                err(
                    b.line,
                    format!(
                        "block {:?} in function {:?} has no terminator",
                        b.label, f.name
                    ),
                )
            })?;
            let resolve = |label: &str| -> Result<BlockId, FrontendError> {
                local[fi].get(label).copied().ok_or_else(|| {
                    err(
                        *tline,
                        format!("unknown label {:?} in function {:?}", label, f.name),
                    )
                })
            };
            use fetchmech_isa::Terminator as T;
            match term {
                Term::Fall(next) => builder.set_terminator(
                    id,
                    T::FallThrough {
                        next: resolve(next)?,
                    },
                ),
                Term::Cond {
                    srcs,
                    taken,
                    fall,
                    model,
                } => {
                    let branch =
                        builder.set_cond_branch(id, *srcs, resolve(taken)?, resolve(fall)?);
                    debug_assert_eq!(branch.0 as usize, models.len());
                    models.push(*model);
                }
                Term::Jump(target) => builder.set_terminator(
                    id,
                    T::Jump {
                        target: resolve(target)?,
                    },
                ),
                Term::Call { callee, return_to } => {
                    let entry = func_entries.get(callee.as_str()).copied().ok_or_else(|| {
                        err(*tline, format!("unknown function {callee:?} in call"))
                    })?;
                    builder.set_terminator(
                        id,
                        T::Call {
                            callee: entry,
                            return_to: resolve(return_to)?,
                        },
                    );
                }
                // `main` must halt, not return: the executor's halt-restart
                // resets behaviour state deterministically.
                Term::Ret if fi == 0 => builder.set_terminator(id, T::Halt),
                Term::Ret => builder.set_terminator(id, T::Return),
            }
        }
    }
    builder.set_entry(func_entries[module.funcs[0].name.as_str()]);
    let program = builder.finish()?;
    Ok(LoweredProgram {
        program,
        behaviors: BehaviorMap::new(models),
        labels,
    })
}

/// Parses the shared behaviour-annotation grammar (`p=0.7`, `loop=20`,
/// `fixed=8`, `pattern=1101:0.05`) used by both frontends.
pub(crate) fn parse_model(anno: &str, line: usize) -> Result<BranchModel, FrontendError> {
    let (key, value) = anno
        .split_once('=')
        .ok_or_else(|| err(line, format!("bad behaviour annotation @{anno}")))?;
    let value = value.trim();
    match key.trim() {
        "p" => {
            let p: f64 = value
                .parse()
                .map_err(|_| err(line, format!("bad probability {value:?}")))?;
            if !(0.0..=1.0).contains(&p) {
                return Err(err(line, "probability must be in [0, 1]"));
            }
            Ok(BranchModel::Bernoulli(p))
        }
        "loop" => {
            let m: f64 = value
                .parse()
                .map_err(|_| err(line, format!("bad loop mean {value:?}")))?;
            if m < 1.0 {
                return Err(err(line, "loop mean must be >= 1"));
            }
            Ok(BranchModel::Loop { mean_trips: m })
        }
        "fixed" => {
            let t: u64 = value
                .parse()
                .map_err(|_| err(line, format!("bad trip count {value:?}")))?;
            if t == 0 {
                return Err(err(line, "fixed trips must be >= 1"));
            }
            Ok(BranchModel::FixedLoop { trips: t })
        }
        "pattern" => {
            let (bits_s, noise_s) = value
                .split_once(':')
                .ok_or_else(|| err(line, "pattern needs `bits:noise`"))?;
            let bits_s = bits_s.trim();
            if bits_s.is_empty() || bits_s.len() > 32 {
                return Err(err(line, "pattern needs 1..=32 bits"));
            }
            let mut bits = 0u32;
            for (i, c) in bits_s.chars().enumerate() {
                match c {
                    '1' => bits |= 1 << i,
                    '0' => {}
                    _ => return Err(err(line, "pattern bits must be 0 or 1")),
                }
            }
            let noise: f64 = noise_s
                .trim()
                .parse()
                .map_err(|_| err(line, format!("bad pattern noise {noise_s:?}")))?;
            if !(0.0..=1.0).contains(&noise) {
                return Err(err(line, "noise must be in [0, 1]"));
            }
            Ok(BranchModel::Pattern {
                bits,
                len: bits_s.len() as u8,
                noise,
            })
        }
        other => Err(err(line, format!("unknown behaviour annotation @{other}="))),
    }
}
