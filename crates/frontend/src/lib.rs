//! External-program frontends for the fetchmech simulator.
//!
//! The rest of the workspace studies fetch mechanisms over *synthetic*
//! workloads calibrated to the paper's benchmark suite. This crate opens
//! that world up: it parses small external programs — a Bril-style JSON
//! CFG form ([`Format::Bril`]) and a flat WebAssembly-text subset
//! ([`Format::Wat`]) —
//! validates them, and lowers them to a `fetchmech-isa`
//! [`Program`](fetchmech_isa::Program) plus a
//! [`BehaviorMap`](fetchmech_workloads::BehaviorMap), so the existing
//! trace generator, lint rules, optimizer, and fetch-scheme simulations
//! run on uploaded programs unchanged.
//!
//! Behaviour is the one thing an external format cannot carry natively:
//! the simulator needs to know how often each conditional branch is taken.
//! Both frontends accept the workloads assembler's annotation grammar
//! (`p=…`, `loop=…`, `fixed=…`, `pattern=bits:noise`) — as extra JSON
//! fields on Bril `br` instructions, and as `;; @…` comments after WAT
//! `br_if` — defaulting to an even coin flip.
//!
//! # Examples
//!
//! ```
//! use fetchmech_frontend::{parse, Format};
//!
//! let src = r#"{"functions": [{"name": "main", "instrs": [
//!     {"op": "const", "dest": "n", "value": 8},
//!     {"label": "head"},
//!     {"op": "add", "dest": "n", "args": ["n", "n"]},
//!     {"op": "br", "args": ["n"], "labels": ["head", "done"], "trips": 6},
//!     {"label": "done"},
//!     {"op": "ret"}
//! ]}]}"#;
//! let lowered = parse(Format::Bril, src).unwrap();
//! assert_eq!(lowered.program.num_branches(), 1);
//! assert!(lowered.labels.contains_key("main.head"));
//! ```

mod bril;
mod ir;
mod wat;

pub use ir::{FrontendError, LoweredProgram};

/// The external program formats the frontend understands.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Format {
    /// Bril-style JSON CFG (`.bril.json` / `.json`).
    Bril,
    /// Flat WebAssembly text subset (`.wat`).
    Wat,
}

impl Format {
    /// The canonical lower-case name (`"bril"` / `"wat"`), as used by the
    /// serve API and CLI.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            Format::Bril => "bril",
            Format::Wat => "wat",
        }
    }

    /// Picks the format from a file name, by extension: `.wat` is WAT,
    /// `.json` (including `.bril.json`) is Bril.
    #[must_use]
    pub fn for_path(path: &str) -> Option<Format> {
        let lower = path.to_ascii_lowercase();
        if lower.ends_with(".wat") {
            Some(Format::Wat)
        } else if lower.ends_with(".json") {
            Some(Format::Bril)
        } else {
            None
        }
    }
}

impl std::str::FromStr for Format {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "bril" => Ok(Format::Bril),
            "wat" => Ok(Format::Wat),
            other => Err(format!(
                "unknown format {other:?} (expected \"bril\" or \"wat\")"
            )),
        }
    }
}

/// Parses and lowers an external program.
///
/// This is the crate's front door: on success the result carries a
/// validated CFG, one behaviour model per conditional branch, and a
/// `func.label` → block map.
///
/// # Errors
///
/// Returns a [`FrontendError`] with a stable, user-facing message — a
/// source line number for WAT, `function "f", instruction N` coordinates
/// for Bril — on any syntax, reference, or type problem.
pub fn parse(format: Format, src: &str) -> Result<LoweredProgram, FrontendError> {
    let module = match format {
        Format::Bril => bril::parse(src)?,
        Format::Wat => wat::parse(src)?,
    };
    ir::lower(&module)
}

/// Renders a lowered program as assembler-style text: one line per
/// instruction, labels, behaviour annotations on branches. For humans
/// (`fetchmech-lint frontend --dump`), not for round-tripping.
#[must_use]
pub fn dump(lowered: &LoweredProgram) -> String {
    use fetchmech_isa::{BlockId, Terminator};
    use fetchmech_workloads::BranchModel;
    use std::fmt::Write as _;

    // Invert the label map for display.
    let mut names: Vec<Option<&str>> = vec![None; lowered.program.num_blocks()];
    for (name, id) in &lowered.labels {
        names[id.0 as usize] = Some(name);
    }
    let name_of = |id: BlockId| -> String {
        names[id.0 as usize].map_or_else(|| format!("{id}"), str::to_owned)
    };

    let mut out = String::new();
    for block in lowered.program.blocks() {
        let _ = writeln!(out, "{}:", name_of(block.id));
        for inst in &block.insts {
            let _ = write!(out, "    {}", inst.op.mnemonic());
            if let Some(d) = inst.dest {
                let _ = write!(out, " {d}");
            }
            for s in inst.srcs.iter().flatten() {
                let _ = write!(out, " {s}");
            }
            if inst.imm != 0 {
                let _ = write!(out, " #{}", inst.imm);
            }
            let _ = writeln!(out);
        }
        match block.terminator {
            Terminator::FallThrough { next } => {
                let _ = writeln!(out, "    fall {}", name_of(next));
            }
            Terminator::CondBranch {
                id, taken, fall, ..
            } => {
                let anno = match lowered.behaviors.model(id) {
                    BranchModel::Bernoulli(p) => format!("@p={p}"),
                    BranchModel::Loop { mean_trips } => format!("@loop={mean_trips}"),
                    BranchModel::FixedLoop { trips } => format!("@fixed={trips}"),
                    BranchModel::Pattern { bits, len, noise } => {
                        let mut s = String::new();
                        for i in 0..len {
                            s.push(if bits >> i & 1 == 1 { '1' } else { '0' });
                        }
                        format!("@pattern={s}:{noise}")
                    }
                };
                let _ = writeln!(out, "    br {} {} {anno}", name_of(taken), name_of(fall));
            }
            Terminator::Jump { target } => {
                let _ = writeln!(out, "    jmp {}", name_of(target));
            }
            Terminator::Call { callee, return_to } => {
                let _ = writeln!(
                    out,
                    "    call {} -> {}",
                    name_of(callee),
                    name_of(return_to)
                );
            }
            Terminator::Return => {
                let _ = writeln!(out, "    ret");
            }
            Terminator::Halt => {
                let _ = writeln!(out, "    halt");
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use fetchmech_isa::Terminator;

    const LOOP_BRIL: &str = r#"{"functions": [{"name": "main", "instrs": [
        {"op": "const", "dest": "i", "value": 0},
        {"label": "head"},
        {"op": "add", "dest": "i", "args": ["i", "i"]},
        {"op": "lt", "dest": "c", "args": ["i", "i"]},
        {"op": "br", "args": ["c"], "labels": ["head", "exit"], "trips": 12},
        {"label": "exit"},
        {"op": "ret"}
    ]}]}"#;

    const LOOP_WAT: &str = r#"(module
      (func $main (local $i i32)
        i32.const 0
        local.set $i
        loop $head
          local.get $i
          i32.const 1
          i32.add
          local.tee $i
          br_if $head ;; @loop=12
        end
      )
    )"#;

    #[test]
    fn bril_and_wat_lower_to_equivalent_shapes() {
        for (format, src) in [(Format::Bril, LOOP_BRIL), (Format::Wat, LOOP_WAT)] {
            let lowered = parse(format, src).unwrap();
            assert_eq!(lowered.program.num_branches(), 1, "{format:?}");
            assert_eq!(lowered.behaviors.len(), 1, "{format:?}");
            // main's return lowers to halt so the trace executor restarts.
            assert!(
                lowered
                    .program
                    .blocks()
                    .iter()
                    .any(|b| b.terminator == Terminator::Halt),
                "{format:?}"
            );
        }
    }

    #[test]
    fn format_detection_and_names() {
        assert_eq!(Format::for_path("a/b/x.bril.json"), Some(Format::Bril));
        assert_eq!(Format::for_path("x.WAT"), Some(Format::Wat));
        assert_eq!(Format::for_path("x.txt"), None);
        assert_eq!("bril".parse::<Format>().unwrap(), Format::Bril);
        assert!("asm".parse::<Format>().is_err());
    }

    #[test]
    fn fingerprint_is_stable_and_behavior_sensitive() {
        let a = parse(Format::Bril, LOOP_BRIL).unwrap();
        let b = parse(Format::Bril, LOOP_BRIL).unwrap();
        assert_eq!(a.fingerprint(), b.fingerprint());
        let tweaked = LOOP_BRIL.replace("12", "13");
        let c = parse(Format::Bril, &tweaked).unwrap();
        assert_ne!(a.fingerprint(), c.fingerprint());
    }

    #[test]
    fn dump_mentions_labels_and_annotations() {
        let lowered = parse(Format::Bril, LOOP_BRIL).unwrap();
        let text = dump(&lowered);
        assert!(text.contains("main.head:"), "{text}");
        assert!(text.contains("@loop=12"), "{text}");
        assert!(text.contains("halt"), "{text}");
    }

    #[test]
    fn bril_errors_carry_context() {
        let bad = r#"{"functions": [{"name": "main", "instrs": [
            {"op": "jmp", "labels": ["nowhere"]}
        ]}]}"#;
        let e = parse(Format::Bril, bad).unwrap_err();
        assert_eq!(e.line, 0);
        assert!(e.message.contains("\"nowhere\""), "{e}");
        assert!(e.message.contains("\"main\""), "{e}");

        let undef = r#"{"functions": [{"name": "main", "instrs": [
            {"op": "add", "dest": "x", "args": ["y", "y"]},
            {"op": "ret"}
        ]}]}"#;
        let e = parse(Format::Bril, undef).unwrap_err();
        assert!(e.message.contains("undefined variable"), "{e}");
        assert!(e.message.contains("instruction 0"), "{e}");
    }

    #[test]
    fn bril_type_errors_are_stable() {
        let bad = r#"{"functions": [{"name": "main", "instrs": [
            {"op": "const", "dest": "x", "type": "float", "value": 1},
            {"op": "add", "dest": "y", "args": ["x", "x"]},
            {"op": "ret"}
        ]}]}"#;
        let e = parse(Format::Bril, bad).unwrap_err();
        assert!(e.message.contains("type error"), "{e}");
    }

    #[test]
    fn wat_errors_carry_line_numbers() {
        let bad = "(module\n  (func $main\n    br_if $nope\n  )\n)";
        let e = parse(Format::Wat, bad).unwrap_err();
        assert_eq!(e.line, 3, "{e}");
        assert!(e.message.contains("$nope"), "{e}");

        let folded = "(module\n  (func $main\n    (i32.add (i32.const 1) (i32.const 2))\n  )\n)";
        let e = parse(Format::Wat, folded).unwrap_err();
        assert!(e.message.contains("folded"), "{e}");

        let numeric = "(module\n  (func $main\n    block $b\n      i32.const 1\n      br_if 0\n    end\n  )\n)";
        let e = parse(Format::Wat, numeric).unwrap_err();
        assert!(e.message.contains("numeric branch targets"), "{e}");
    }

    #[test]
    fn wat_underflow_and_unreachable_are_diagnosed() {
        let underflow = "(module\n  (func $main\n    i32.add\n  )\n)";
        let e = parse(Format::Wat, underflow).unwrap_err();
        assert!(e.message.contains("underflow"), "{e}");

        let unreachable = "(module\n  (func $main\n    return\n    nop\n  )\n)";
        let e = parse(Format::Wat, unreachable).unwrap_err();
        assert!(e.message.contains("unreachable"), "{e}");
    }

    #[test]
    fn wat_calls_and_blocks_lower() {
        let src = r#"(module
          (func $main
            block $exit
              i32.const 1
              br_if $exit ;; @p=0.25
              call $leaf
            end
          )
          (func $leaf
            nop
          )
        )"#;
        let lowered = parse(Format::Wat, src).unwrap();
        assert_eq!(lowered.program.num_funcs(), 2);
        assert!(lowered
            .program
            .blocks()
            .iter()
            .any(|b| matches!(b.terminator, Terminator::Call { .. })));
        assert!(lowered
            .program
            .blocks()
            .iter()
            .any(|b| b.terminator == Terminator::Return));
    }

    #[test]
    fn lowered_programs_execute() {
        use fetchmech_isa::{Layout, LayoutOptions};
        use fetchmech_workloads::{Executor, InputId};

        for (format, src) in [(Format::Bril, LOOP_BRIL), (Format::Wat, LOOP_WAT)] {
            let lowered = parse(format, src).unwrap();
            let layout = Layout::natural(&lowered.program, LayoutOptions::new(16)).unwrap();
            let exec = Executor::new(
                &lowered.program,
                &layout,
                lowered.behaviors.clone(),
                InputId(0),
                7,
                2_000,
            );
            let retired = exec.count();
            assert!(retired >= 2_000, "{format:?}: retired {retired}");
        }
    }
}
