//! Bril-style JSON CFG frontend.
//!
//! Accepts the classic Bril program shape — `{"functions": [{"name", "args",
//! "instrs"}]}` where `instrs` interleaves `{"label": ...}` markers with
//! operation objects — and lowers it to the frontend [`Module`] IR.
//!
//! Differences from upstream Bril, all deliberate:
//!
//! * Values are abstract: `const` materializes a register (the numeric
//!   `value` survives only as the instruction immediate), and arithmetic is
//!   classified by op class, not computed.
//! * Conditional `br` takes optional behaviour fields (`"p"`, `"trips"`,
//!   `"fixed"`, `"pattern"`) describing how often the first label is taken;
//!   without one the branch is an even coin flip.
//! * `call` ends the block (the ISA models calls as block terminators); the
//!   remaining instructions continue in a synthesized `<label>.retN` block.
//!
//! Bril JSON has no useful line numbers, so diagnostics carry
//! `function "name", instruction N` coordinates in the message instead.

use std::collections::HashMap;

use fetchmech::json::{self, Value};
use fetchmech_isa::{Inst, OpClass, Reg};
use fetchmech_workloads::BranchModel;

use crate::ir::{err, BlockIr, FrontendError, FuncIr, Module, Term};

/// Register files a frontend variable can live in.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum VarKind {
    Int,
    Fp,
}

/// Per-function variable environment: first-seen allocation into `r1..r31`
/// (integers) and `f1..f31` (floats), wrapping modulo 31 when a function
/// defines more variables than the file holds. Aliasing under wraparound is
/// acceptable — the simulator models dependence shape, not values.
#[derive(Debug, Default)]
struct VarEnv {
    vars: HashMap<String, (VarKind, Reg)>,
    next_int: u8,
    next_fp: u8,
}

impl VarEnv {
    fn define(&mut self, name: &str, kind: VarKind) -> Reg {
        if let Some(&(k, reg)) = self.vars.get(name) {
            if k == kind {
                return reg;
            }
        }
        let reg = match kind {
            VarKind::Int => {
                let r = Reg::int(1 + self.next_int % 31);
                self.next_int = self.next_int.wrapping_add(1);
                r
            }
            VarKind::Fp => {
                let r = Reg::fp(1 + self.next_fp % 31);
                self.next_fp = self.next_fp.wrapping_add(1);
                r
            }
        };
        self.vars.insert(name.to_owned(), (kind, reg));
        reg
    }

    fn get(&self, name: &str) -> Option<(VarKind, Reg)> {
        self.vars.get(name).copied()
    }
}

/// Parses Bril-style JSON into the frontend module IR.
pub(crate) fn parse(src: &str) -> Result<Module, FrontendError> {
    let root = json::parse(src).map_err(|e| err(0, e.to_string()))?;
    let funcs_v = root
        .get("functions")
        .ok_or_else(|| err(0, "top-level object needs a \"functions\" array"))?;
    let funcs_v = funcs_v
        .as_array()
        .ok_or_else(|| err(0, "\"functions\" must be an array"))?;
    if funcs_v.is_empty() {
        return Err(err(0, "\"functions\" must not be empty"));
    }
    let mut module = Module::default();
    for f in funcs_v {
        module.funcs.push(parse_func(f)?);
    }
    Ok(module)
}

fn parse_func(f: &Value) -> Result<FuncIr, FrontendError> {
    let name = f
        .get("name")
        .and_then(Value::as_str)
        .ok_or_else(|| err(0, "function needs a string \"name\""))?
        .to_owned();
    let ctx = |i: usize, msg: &str| -> FrontendError {
        err(0, format!("function {name:?}, instruction {i}: {msg}"))
    };
    let mut env = VarEnv::default();
    if let Some(params) = f.get("args").and_then(Value::as_array) {
        for p in params {
            let pname = p
                .get("name")
                .and_then(Value::as_str)
                .ok_or_else(|| err(0, format!("function {name:?}: parameter needs a \"name\"")))?;
            env.define(pname, var_kind(p.get("type")));
        }
    }
    let instrs = f
        .get("instrs")
        .and_then(Value::as_array)
        .ok_or_else(|| err(0, format!("function {name:?} needs an \"instrs\" array")))?;

    let mut blocks: Vec<BlockIr> = Vec::new();
    let mut current: Option<BlockIr> = None;
    let mut synth = 0usize;
    let open = |label: String, blocks: &mut Vec<BlockIr>, current: &mut Option<BlockIr>| {
        if let Some(mut b) = current.take() {
            // Implicit fall-through at a label boundary.
            if b.term.is_none() {
                b.term = Some((0, Term::Fall(label.clone())));
            }
            blocks.push(b);
        }
        *current = Some(BlockIr {
            line: 0,
            label,
            insts: Vec::new(),
            term: None,
        });
    };
    open("entry".to_owned(), &mut blocks, &mut current);

    for (i, instr) in instrs.iter().enumerate() {
        if let Some(label) = instr.get("label").and_then(Value::as_str) {
            open(label.to_owned(), &mut blocks, &mut current);
            continue;
        }
        let op = instr
            .get("op")
            .and_then(Value::as_str)
            .ok_or_else(|| ctx(i, "instruction needs an \"op\" or \"label\""))?;
        let block = current.as_mut().expect("a block is always open");
        if block.term.is_some() {
            return Err(ctx(i, "unreachable instruction after a terminator"));
        }
        match op {
            "br" => {
                let cond = one_arg(instr).ok_or_else(|| ctx(i, "br needs 1 arg"))?;
                let (_, reg) = env
                    .get(cond)
                    .ok_or_else(|| ctx(i, &format!("undefined variable {cond:?}")))?;
                let labels = label_list(instr);
                if labels.len() != 2 {
                    return Err(ctx(i, "br needs exactly 2 labels"));
                }
                let (taken, fall) = (labels[0], labels[1]);
                let model = branch_model(instr).map_err(|m| ctx(i, &m))?;
                block.term = Some((
                    0,
                    Term::Cond {
                        srcs: [Some(reg), None],
                        taken: taken.to_owned(),
                        fall: fall.to_owned(),
                        model,
                    },
                ));
            }
            "jmp" => {
                let labels = label_list(instr);
                if labels.len() != 1 {
                    return Err(ctx(i, "jmp needs exactly 1 label"));
                }
                block.term = Some((0, Term::Jump(labels[0].to_owned())));
            }
            "ret" => block.term = Some((0, Term::Ret)),
            "call" => {
                let callee = instr
                    .get("funcs")
                    .and_then(Value::as_array)
                    .and_then(|a| a.first())
                    .and_then(Value::as_str)
                    .ok_or_else(|| ctx(i, "call needs a \"funcs\" list with 1 name"))?;
                if let Some(dest) = instr.get("dest").and_then(Value::as_str) {
                    // A call result is a fresh definition in the caller.
                    env.define(dest, var_kind(instr.get("type")));
                }
                let return_to = format!("{}.ret{synth}", block.label);
                synth += 1;
                block.term = Some((
                    0,
                    Term::Call {
                        callee: callee.to_owned(),
                        return_to: return_to.clone(),
                    },
                ));
                open(return_to, &mut blocks, &mut current);
            }
            _ => {
                let inst = lower_value_op(op, instr, &mut env).map_err(|m| ctx(i, &m))?;
                block.insts.push(inst);
            }
        }
    }
    if let Some(mut b) = current.take() {
        if b.term.is_none() {
            // Bril functions may simply end; that is a return.
            b.term = Some((0, Term::Ret));
        }
        blocks.push(b);
    }
    Ok(FuncIr {
        name,
        line: 0,
        blocks,
    })
}

/// Classifies a Bril `"type"` field: `float`/`double` live in the FP file,
/// everything else (int, bool, pointers) in the integer file.
fn var_kind(ty: Option<&Value>) -> VarKind {
    match ty.and_then(Value::as_str) {
        Some("float" | "double") => VarKind::Fp,
        _ => VarKind::Int,
    }
}

fn one_arg(instr: &Value) -> Option<&str> {
    let args = instr.get("args")?.as_array()?;
    match args {
        [a] => a.as_str(),
        _ => None,
    }
}

fn label_list(instr: &Value) -> Vec<&str> {
    instr
        .get("labels")
        .and_then(Value::as_array)
        .map(|a| a.iter().filter_map(Value::as_str).collect())
        .unwrap_or_default()
}

/// Reads the optional behaviour fields off a `br` instruction.
fn branch_model(instr: &Value) -> Result<BranchModel, String> {
    if let Some(p) = instr.get("p") {
        let p = p.as_f64().ok_or("\"p\" must be a number")?;
        if !(0.0..=1.0).contains(&p) {
            return Err("\"p\" must be in [0, 1]".to_owned());
        }
        return Ok(BranchModel::Bernoulli(p));
    }
    if let Some(t) = instr.get("trips") {
        let m = t.as_f64().ok_or("\"trips\" must be a number")?;
        if m < 1.0 {
            return Err("\"trips\" must be >= 1".to_owned());
        }
        return Ok(BranchModel::Loop { mean_trips: m });
    }
    if let Some(t) = instr.get("fixed") {
        let t = t
            .as_u64()
            .filter(|&t| t >= 1)
            .ok_or("\"fixed\" must be an integer >= 1")?;
        return Ok(BranchModel::FixedLoop { trips: t });
    }
    if let Some(p) = instr.get("pattern") {
        let spec = p
            .as_str()
            .ok_or("\"pattern\" must be a \"bits:noise\" string")?;
        return crate::ir::parse_model(&format!("pattern={spec}"), 0).map_err(|e| e.message);
    }
    Ok(BranchModel::Bernoulli(0.5))
}

/// Lowers a non-control Bril operation to one ISA instruction.
fn lower_value_op(op: &str, instr: &Value, env: &mut VarEnv) -> Result<Inst, String> {
    let args: Vec<&str> = instr
        .get("args")
        .and_then(Value::as_array)
        .map(|a| a.iter().filter_map(Value::as_str).collect())
        .unwrap_or_default();
    let dest_name = instr.get("dest").and_then(Value::as_str);
    let ty = var_kind(instr.get("type"));

    // `const` defines its destination out of thin air; the value survives
    // only as the (clamped) immediate.
    if op == "const" {
        let dest_name = dest_name.ok_or("const needs a \"dest\"")?;
        let dest = env.define(dest_name, ty);
        let class = if ty == VarKind::Fp {
            OpClass::FpAdd
        } else {
            OpClass::IntAlu
        };
        let imm = instr.get("value").and_then(Value::as_f64).map_or(0i8, |v| {
            v.clamp(f64::from(i8::MIN), f64::from(i8::MAX)) as i8
        });
        return Ok(Inst::new(class, Some(dest), [None, None]).with_imm(imm));
    }

    let (class, wants, defines) = match op {
        "add" | "sub" | "and" | "or" | "xor" | "shl" | "shr" | "eq" | "lt" | "le" | "gt" | "ge"
        | "not" | "id" | "alu" => (OpClass::IntAlu, VarKind::Int, true),
        "mul" | "div" => (OpClass::IntMul, VarKind::Int, true),
        "fadd" | "fsub" => (OpClass::FpAdd, VarKind::Fp, true),
        "fmul" | "fdiv" => (OpClass::FpMul, VarKind::Fp, true),
        "load" | "ld" => (OpClass::Load, VarKind::Int, true),
        "store" | "st" => (OpClass::Store, VarKind::Int, false),
        "nop" => return Ok(Inst::nop()),
        // `print` reads its args and produces nothing the pipeline tracks.
        "print" => (OpClass::IntAlu, VarKind::Int, false),
        _ => return Err(format!("unknown op {op:?}")),
    };

    if args.len() > 2 {
        return Err(format!("{op} takes at most 2 args, got {}", args.len()));
    }
    let mut srcs = [None, None];
    for (slot, a) in args.iter().enumerate() {
        let (kind, reg) = env
            .get(a)
            .ok_or_else(|| format!("undefined variable {a:?}"))?;
        // Loads address through the integer file but `store` may write a
        // float value, and FP compares (flt/feq) read floats — only flag
        // the mismatches that would put an operand in a file the op class
        // never reads.
        if class == OpClass::FpAdd || class == OpClass::FpMul {
            if kind != VarKind::Fp {
                return Err(format!(
                    "type error: {op} reads float variables but {a:?} is an integer"
                ));
            }
        } else if kind != VarKind::Int && class != OpClass::Store {
            return Err(format!(
                "type error: {op} reads integer variables but {a:?} is a float"
            ));
        }
        srcs[slot] = Some(reg);
    }
    let dest = match (defines, dest_name) {
        (true, Some(d)) => Some(env.define(
            d,
            if wants == VarKind::Fp {
                VarKind::Fp
            } else {
                ty
            },
        )),
        _ => None,
    };
    Ok(Inst::new(class, dest, srcs))
}
