//! Write a program by hand in the text assembly format, annotate its branch
//! behaviour, and measure how each fetch mechanism copes with it.
//!
//! ```text
//! cargo run --release --example custom_assembly
//! ```

use fetchmech::isa::{disasm, Layout, LayoutOptions};
use fetchmech::pipeline::MachineModel;
use fetchmech::workloads::{parse_asm, Executor, InputId};
use fetchmech::{simulate, SchemeKind};

/// A hot loop whose body is a chain of two hammocks — the collapsing
/// buffer's favourite food — plus a rarely-called slow path.
const PROGRAM: &str = r"
func main
block head
    alu  r1, r10
    br   r1 ? mid : skip1 @p=0.85     ; short forward skip #1 (intra-block)
block skip1
    alu  r5, r11
    fall mid
block mid
    ld   r3, [r12+4]
    alu  r2, r11
    br   r2 ? tail : skip2 @p=0.85    ; short forward skip #2 (intra-block)
block skip2
    mul  r4, r10, r11
    fall tail
block tail
    alu  r7, r12
    st   r3, [r13+8]
    br   r6 ? head : cold @fixed=40   ; the loop backedge
block cold
    call slowpath, return=again
block again
    br   r1 ? head : out @p=0.95
block out
    halt

func slowpath
block s0
    fadd f1, f2, f3
    fmul f2, f1, f1
    ret
";

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let asm = parse_asm(PROGRAM)?;
    let machine = MachineModel::p112();
    let layout = Layout::natural(&asm.program, LayoutOptions::new(machine.block_bytes))?;

    println!(
        "assembled {} blocks, {} branches:",
        asm.program.num_blocks(),
        asm.program.num_branches()
    );
    for inst in layout.code() {
        let bar = if inst.addr.offset_words(machine.block_bytes) == 0 {
            "|"
        } else {
            " "
        };
        println!("  {bar} {}", disasm(inst));
    }

    println!(
        "\n{:<14} {:>6} {:>6} {:>10}",
        "scheme", "IPC", "EIR", "collapsed"
    );
    for scheme in SchemeKind::ALL {
        let trace: Vec<_> = Executor::new(
            &asm.program,
            &layout,
            asm.behaviors.clone(),
            InputId::TEST,
            42,
            100_000,
        )
        .collect();
        let r = simulate(&machine, scheme, trace);
        println!(
            "{:<14} {:>6.3} {:>6.3} {:>10}",
            scheme.name(),
            r.ipc(),
            r.eir(),
            r.fetch.collapsed
        );
    }
    Ok(())
}
