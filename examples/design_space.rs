//! Design-space exploration beyond the paper's three fixed machines:
//! sweep the speculation depth and BTB size and watch which fetch
//! mechanisms care — an ablation of the paper's design choices.
//!
//! ```text
//! cargo run --release --example design_space
//! ```

use fetchmech::isa::{Layout, LayoutOptions};
use fetchmech::pipeline::MachineModel;
use fetchmech::workloads::{suite, InputId};
use fetchmech::{simulate, SchemeKind};

fn run(machine: &MachineModel, scheme: SchemeKind) -> f64 {
    let bench = suite::benchmark("gcc").expect("known benchmark");
    let layout =
        Layout::natural(&bench.program, LayoutOptions::new(machine.block_bytes)).expect("layout");
    let trace: Vec<_> = bench.executor(&layout, InputId::TEST, 120_000).collect();
    simulate(machine, scheme, trace).ipc()
}

fn main() {
    let base = MachineModel::p112();
    println!("ablation on {} running gcc\n", base.name);

    println!("speculation depth (paper: 6 for P112):");
    println!("{:<8} {:>12} {:>12}", "depth", "sequential", "collapsing");
    for depth in [1u32, 2, 4, 6, 8, 12] {
        let mut m = base.clone();
        m.spec_depth = depth;
        println!(
            "{:<8} {:>12.3} {:>12.3}",
            depth,
            run(&m, SchemeKind::Sequential),
            run(&m, SchemeKind::CollapsingBuffer)
        );
    }

    println!("\nBTB entries (paper: 1024):");
    println!("{:<8} {:>12} {:>12}", "entries", "sequential", "collapsing");
    for entries in [64usize, 256, 1024, 4096] {
        let mut m = base.clone();
        m.btb_entries = entries;
        println!(
            "{:<8} {:>12.3} {:>12.3}",
            entries,
            run(&m, SchemeKind::Sequential),
            run(&m, SchemeKind::CollapsingBuffer)
        );
    }

    println!("\nreturn-address stack (extension; paper: none):");
    println!("{:<8} {:>12} {:>12}", "entries", "sequential", "collapsing");
    for entries in [0u32, 4, 16] {
        let m = base.clone().with_ras(entries);
        println!(
            "{:<8} {:>12.3} {:>12.3}",
            entries,
            run(&m, SchemeKind::Sequential),
            run(&m, SchemeKind::CollapsingBuffer)
        );
    }

    println!("\nfetch misprediction penalty (paper: 2; shifter implementation: 3):");
    println!("{:<8} {:>12} {:>12}", "penalty", "banked", "collapsing");
    for penalty in [1u32, 2, 3, 4, 6] {
        let m = base.clone().with_fetch_penalty(penalty);
        println!(
            "{:<8} {:>12.3} {:>12.3}",
            penalty,
            run(&m, SchemeKind::BankedSequential),
            run(&m, SchemeKind::CollapsingBuffer)
        );
    }
}
