//! Snapshot a dynamic trace to disk in the `FMTR` binary format, load it
//! back, and verify the replay drives the simulator to bit-identical
//! results — the workflow for sharing reproducible traces between machines
//! (or feeding externally-generated traces to the simulator).
//!
//! ```text
//! cargo run --release --example trace_roundtrip
//! ```

use fetchmech::isa::{read_trace, write_trace, Layout, LayoutOptions};
use fetchmech::pipeline::MachineModel;
use fetchmech::workloads::{suite, InputId};
use fetchmech::{simulate, SchemeKind};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let machine = MachineModel::p18();
    let bench = suite::benchmark("sc").expect("known benchmark");
    let layout = Layout::natural(&bench.program, LayoutOptions::new(machine.block_bytes))?;
    let trace: Vec<_> = bench.executor(&layout, InputId::TEST, 100_000).collect();

    // Snapshot.
    let path = std::env::temp_dir().join("fetchmech-sc.fmtr");
    let mut buf = Vec::new();
    write_trace(&mut buf, &trace)?;
    std::fs::write(&path, &buf)?;
    println!(
        "wrote {} records ({} bytes, {:.1} B/record) to {}",
        trace.len(),
        buf.len(),
        buf.len() as f64 / trace.len() as f64,
        path.display()
    );

    // Reload and replay.
    let reloaded = read_trace(std::fs::File::open(&path)?)?;
    assert_eq!(reloaded, trace, "the snapshot must replay identically");

    let live = simulate(&machine, SchemeKind::CollapsingBuffer, trace);
    let replay = simulate(&machine, SchemeKind::CollapsingBuffer, reloaded);
    assert_eq!(live.cycles, replay.cycles);
    assert_eq!(live.delivered, replay.delivered);
    println!(
        "replay verified: {} cycles, IPC {:.3} (bit-identical to the live run)",
        replay.cycles,
        replay.ipc()
    );
    std::fs::remove_file(&path)?;
    Ok(())
}
