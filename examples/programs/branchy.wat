;; Branch-dense stressor: three conditional branches per trip around the
;; spin loop — a patterned guard, a rare exit test, and the loop back
;; edge — so fetch-scheme differences on taken-branch breaks show up.
(module
  (func $main (local $x i32) (local $y i32)
    i32.const 5
    local.set $x
    block $out
      loop $spin
        local.get $x
        i32.const 3
        i32.and
        local.set $y
        block $skip
          local.get $y
          i32.eqz
          br_if $skip ;; @pattern=1100:0.1
          local.get $x
          local.get $y
          i32.add
          local.set $x
        end
        local.get $x
        i32.const 60
        i32.gt_s
        br_if $out ;; @p=0.04
        local.get $x
        i32.const 1
        i32.add
        local.set $x
        i32.const 1
        br_if $spin ;; @loop=30
      end
    end
    return
  )
)
