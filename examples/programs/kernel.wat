;; Loop-heavy reduction kernel: one hot counted loop plus a guarded
;; fix-up path. The @loop annotation calibrates the back edge to a mean
;; of 24 trips; the guard is strongly biased toward the early exit.
(module
  (func $main (local $i i32) (local $acc i32) (local $lim i32)
    i32.const 32
    local.set $lim
    i32.const 0
    local.set $i
    block $exit
      loop $head
        local.get $i
        i32.load
        local.get $acc
        i32.add
        local.set $acc
        local.get $i
        i32.const 1
        i32.add
        local.tee $i
        local.get $lim
        i32.lt_s
        br_if $head ;; @loop=24
      end
      local.get $acc
      i32.const 0
      i32.gt_s
      br_if $exit ;; @p=0.9
      local.get $acc
      i32.const 1
      i32.add
      local.set $acc
    end
    return
  )
)
