//! The §4 compiler story end to end: profile on training inputs, select
//! traces, reorder the code, and measure what it buys each fetch mechanism
//! on a held-out input.
//!
//! ```text
//! cargo run --release --example compiler_pipeline [benchmark]
//! ```

use fetchmech::compiler::{reorder, Profile, TraceSelectConfig};
use fetchmech::isa::{Layout, LayoutOptions};
use fetchmech::pipeline::MachineModel;
use fetchmech::workloads::{suite, InputId, Workload};
use fetchmech::{simulate, SchemeKind};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let name = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "compress".to_owned());
    let Some(bench) = suite::benchmark(&name) else {
        eprintln!(
            "unknown benchmark {name:?}; known: {:?} {:?}",
            suite::INT_NAMES,
            suite::FP_NAMES
        );
        std::process::exit(1);
    };
    let machine = MachineModel::p112();

    // 1. Profile on the five training inputs (the test input is held out).
    let profile = Profile::collect(&bench, &InputId::PROFILE, 100_000);
    println!(
        "profiled {name} on {} training inputs",
        InputId::PROFILE.len()
    );

    // 2. Trace selection + layout with branch-sense inversion.
    let reordered = reorder(&bench.program, &profile, &TraceSelectConfig::default());
    println!(
        "reordered: {} blocks, {} traces, {} branch senses inverted",
        bench.program.num_blocks(),
        reordered.trace_ends.len(),
        reordered.inverted_branches
    );

    // 3. Compare every fetch scheme on the held-out input, before and after.
    let natural = Layout::natural(&bench.program, LayoutOptions::new(machine.block_bytes))?;
    let optimized = reordered.layout(machine.block_bytes)?;
    let reordered_bench = Workload {
        spec: bench.spec.clone(),
        program: reordered.program.clone(),
        behaviors: bench.behaviors.clone(),
    };

    println!(
        "\n{} on {}:\n{:<14} {:>10} {:>10} {:>8}",
        name, machine.name, "scheme", "IPC(unord)", "IPC(reord)", "speedup"
    );
    for scheme in SchemeKind::ALL {
        let before = {
            let trace: Vec<_> = bench.executor(&natural, InputId::TEST, 200_000).collect();
            simulate(&machine, scheme, trace).ipc()
        };
        let after = {
            let trace: Vec<_> = reordered_bench
                .executor(&optimized, InputId::TEST, 200_000)
                .collect();
            simulate(&machine, scheme, trace).ipc()
        };
        println!(
            "{:<14} {:>10.3} {:>10.3} {:>7.1}%",
            scheme.name(),
            before,
            after,
            100.0 * (after / before - 1.0)
        );
    }
    println!(
        "\nReordering converts likely-taken branches into fall-throughs, so the\n\
         simple schemes gain the most; combined with the collapsing buffer it\n\
         gives the best overall result (the paper's closing recommendation)."
    );
    Ok(())
}
