//! Quickstart: simulate one benchmark on one machine with two fetch schemes
//! and compare.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use fetchmech::isa::{Layout, LayoutOptions};
use fetchmech::pipeline::MachineModel;
use fetchmech::workloads::{suite, InputId};
use fetchmech::{simulate, SchemeKind};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // The machine: P112, the paper's most aggressive model (12-issue,
    // 128 KB I-cache with 64-byte blocks, speculation beyond 6 branches).
    let machine = MachineModel::p112();
    println!("machine: {machine}");

    // The workload: the synthetic stand-in for SPECint92 `eqntott` —
    // extremely branchy code with many short forward (intra-block) branches.
    let bench = suite::benchmark("eqntott").expect("eqntott is part of the suite");
    let layout = Layout::natural(&bench.program, LayoutOptions::new(machine.block_bytes))?;
    println!(
        "workload: {} ({} static instructions)",
        bench.spec.name,
        layout.code().len()
    );

    // Simulate 200k dynamic instructions under each fetch mechanism.
    println!(
        "\n{:<14} {:>6} {:>6} {:>10} {:>12}",
        "scheme", "IPC", "EIR", "cycles", "mispredict%"
    );
    for scheme in SchemeKind::ALL {
        let trace: Vec<_> = bench.executor(&layout, InputId::TEST, 200_000).collect();
        let r = simulate(&machine, scheme, trace);
        println!(
            "{:<14} {:>6.3} {:>6.3} {:>10} {:>11.1}%",
            scheme.name(),
            r.ipc(),
            r.eir(),
            r.cycles,
            100.0 * r.fetch.mispredict_rate()
        );
    }
    println!(
        "\nThe collapsing buffer closes most of the gap between the banked scheme\n\
         and the perfect bound by collapsing intra-block branch gaps (Table 2\n\
         says ~40-50% of eqntott's taken branches stay within a 64-byte block)."
    );
    Ok(())
}
