//! Performance harness for the simulation hot path: times the same
//! (machine × scheme × benchmark) grid through the per-instruction
//! reference path and the block-stream fast path, phase by phase
//! (trace generation / stream build / simulate / EIR), checks the two are
//! bit-identical, re-runs the block grid on the parallel worker pool, and
//! writes everything — timings, block-stream compression stats, cache
//! counters, and deterministic work totals — to `BENCH_PR8.json` for CI to
//! archive.
//!
//! ```text
//! cargo run --release --example runner_bench
//! ```
//!
//! With `FETCHMECH_PERF_GATE=<ratio>` set, the run fails unless the
//! single-threaded block path beats the per-instruction path end-to-end by
//! at least `<ratio>`×. The gate is only meaningful in release builds: in
//! debug builds every block-stream simulation re-runs the per-instruction
//! oracle for the differential check, so the gate is reported but not
//! enforced there.

use std::time::Instant;

use fetchmech::experiments::{ExpConfig, Lab, LayoutVariant};
use fetchmech::json::Value;
use fetchmech::pipeline::MachineModel;
use fetchmech::workloads::WorkloadClass;
use fetchmech::{measure_eir, simulate, EirResult, SchemeKind, SimResult};

fn grid(lab: &Lab) -> Vec<(MachineModel, SchemeKind, &'static str)> {
    let mut jobs = Vec::new();
    for machine in [MachineModel::p14(), MachineModel::p112()] {
        for scheme in SchemeKind::ALL {
            for bench in lab.class_names(WorkloadClass::Int) {
                jobs.push((machine.clone(), scheme, bench));
            }
        }
    }
    jobs
}

/// The distinct (benchmark, block-size) trace keys behind the grid — the
/// units of generation work, as opposed to the simulation cells.
fn trace_keys(jobs: &[(MachineModel, SchemeKind, &'static str)]) -> Vec<(&'static str, u64)> {
    let mut keys: Vec<(&'static str, u64)> = Vec::new();
    for (machine, _, bench) in jobs {
        let key = (*bench, machine.block_bytes);
        if !keys.contains(&key) {
            keys.push(key);
        }
    }
    keys
}

fn timed<T>(f: impl FnOnce() -> T) -> (T, f64) {
    let start = Instant::now();
    let out = f();
    (out, start.elapsed().as_secs_f64())
}

fn secs(v: f64) -> Value {
    Value::Num((v * 10_000.0).round() / 10_000.0)
}

fn ratio(num: f64, den: f64) -> f64 {
    if den > 0.0 {
        num / den
    } else {
        f64::INFINITY
    }
}

fn main() {
    let cfg = ExpConfig {
        trace_len: 20_000,
        profile_len: 8_000,
    };

    // --- Reference path: per-instruction traces, single-threaded. ---------
    // A fresh lab per path so each pays its own generation cost; splitting
    // generation from simulation keeps the phase timings honest (the
    // simulate phases below run entirely against warm caches).
    let insts_lab = Lab::with_threads(cfg, 1);
    let jobs = grid(&insts_lab);
    let keys = trace_keys(&jobs);

    let (_, trace_gen_secs) = timed(|| {
        for &(bench, block_bytes) in &keys {
            insts_lab.test_trace(bench, LayoutVariant::Natural, block_bytes);
        }
    });
    let (insts_results, sim_insts_secs) = timed(|| {
        jobs.iter()
            .map(|(machine, scheme, bench)| {
                let trace =
                    insts_lab.test_trace(bench, LayoutVariant::Natural, machine.block_bytes);
                simulate(machine, *scheme, &trace)
            })
            .collect::<Vec<SimResult>>()
    });
    let (insts_eir, eir_insts_secs) = timed(|| {
        jobs.iter()
            .map(|(machine, scheme, bench)| {
                let trace =
                    insts_lab.test_trace(bench, LayoutVariant::Natural, machine.block_bytes);
                measure_eir(machine, *scheme, &trace)
            })
            .collect::<Vec<EirResult>>()
    });

    // --- Fast path: block streams, single-threaded. -----------------------
    let blocks_lab = Lab::with_threads(cfg, 1);
    let (_, stream_build_secs) = timed(|| {
        for &(bench, block_bytes) in &keys {
            blocks_lab.test_stream(bench, LayoutVariant::Natural, block_bytes);
        }
    });
    let (blocks_results, sim_blocks_secs) = timed(|| {
        jobs.iter()
            .map(|(machine, scheme, bench)| {
                blocks_lab.run(machine, *scheme, bench, LayoutVariant::Natural)
            })
            .collect::<Vec<SimResult>>()
    });
    let (blocks_eir, eir_blocks_secs) = timed(|| {
        jobs.iter()
            .map(|(machine, scheme, bench)| {
                blocks_lab.eir(machine, *scheme, bench, LayoutVariant::Natural)
            })
            .collect::<Vec<EirResult>>()
    });

    assert_eq!(
        insts_results, blocks_results,
        "per-instruction and block-stream simulations must be bit-identical"
    );
    assert_eq!(
        insts_eir, blocks_eir,
        "per-instruction and block-stream EIR must be bit-identical"
    );

    // --- Parallel pool over the block path. -------------------------------
    let parallel_lab = Lab::new(cfg);
    let threads = parallel_lab.runner().threads();
    let (parallel_results, parallel_secs) = timed(|| {
        parallel_lab
            .runner()
            .run(&jobs, |(machine, scheme, bench)| {
                parallel_lab.run(machine, *scheme, bench, LayoutVariant::Natural)
            })
    });
    assert_eq!(
        blocks_results, parallel_results,
        "serial and parallel runs must be bit-identical"
    );

    // --- Block-stream representation stats over the grid's streams. -------
    let (mut s_insts, mut s_records, mut s_templates) = (0u64, 0u64, 0u64);
    let (mut s_stream_bytes, mut s_inst_bytes) = (0u64, 0u64);
    for &(bench, block_bytes) in &keys {
        let stats = blocks_lab
            .test_stream(bench, LayoutVariant::Natural, block_bytes)
            .stats();
        s_insts += stats.insts;
        s_records += stats.records;
        s_templates += stats.templates;
        s_stream_bytes += stats.stream_bytes;
        s_inst_bytes += stats.inst_bytes;
    }
    let mean_run_len = ratio(s_insts as f64, s_records as f64);
    let compression = ratio(s_inst_bytes as f64, s_stream_bytes as f64);

    // --- Deterministic work totals: must be identical run to run. ---------
    let total_cycles: u64 = blocks_results.iter().map(|r| r.cycles).sum();
    let total_retired: u64 = blocks_results.iter().map(|r| r.retired).sum();
    let total_delivered: u64 = blocks_results.iter().map(|r| r.delivered).sum();
    let total_eir_cycles: u64 = blocks_eir.iter().map(|r| r.cycles).sum();

    let insts_path_secs = trace_gen_secs + sim_insts_secs + eir_insts_secs;
    let blocks_path_secs = stream_build_secs + sim_blocks_secs + eir_blocks_secs;
    let block_speedup = ratio(insts_path_secs, blocks_path_secs);
    let sim_speedup = ratio(sim_insts_secs, sim_blocks_secs);
    let gen_speedup = ratio(trace_gen_secs, stream_build_secs);
    // The parallel pool re-runs build + simulate (not EIR) on a fresh lab,
    // so compare it against exactly those serial phases.
    let parallel_speedup = ratio(stream_build_secs + sim_blocks_secs, parallel_secs);

    let stats = parallel_lab.cache_stats();
    let report = Value::object([
        ("grid_jobs", Value::Uint(jobs.len() as u64)),
        ("trace_keys", Value::Uint(keys.len() as u64)),
        ("trace_len", Value::Uint(cfg.trace_len)),
        ("trace_gen_secs", secs(trace_gen_secs)),
        ("sim_insts_secs", secs(sim_insts_secs)),
        ("eir_insts_secs", secs(eir_insts_secs)),
        ("insts_path_secs", secs(insts_path_secs)),
        ("stream_build_secs", secs(stream_build_secs)),
        ("sim_blocks_secs", secs(sim_blocks_secs)),
        ("eir_blocks_secs", secs(eir_blocks_secs)),
        ("blocks_path_secs", secs(blocks_path_secs)),
        ("block_speedup", secs(block_speedup)),
        ("sim_speedup", secs(sim_speedup)),
        ("gen_speedup", secs(gen_speedup)),
        ("threads", Value::Uint(threads as u64)),
        ("parallel_secs", secs(parallel_secs)),
        ("parallel_speedup", secs(parallel_speedup)),
        ("stream_insts", Value::Uint(s_insts)),
        ("stream_records", Value::Uint(s_records)),
        ("stream_templates", Value::Uint(s_templates)),
        ("stream_mean_run_len", secs(mean_run_len)),
        ("stream_compression", secs(compression)),
        ("total_cycles", Value::Uint(total_cycles)),
        ("total_retired", Value::Uint(total_retired)),
        ("total_delivered", Value::Uint(total_delivered)),
        ("total_eir_cycles", Value::Uint(total_eir_cycles)),
        ("stream_builds", Value::Uint(stats.stream_builds)),
        ("stream_hits", Value::Uint(stats.stream_hits)),
        ("trace_generations", Value::Uint(stats.trace_generations)),
        ("trace_hits", Value::Uint(stats.trace_hits)),
    ]);
    let json = format!("{}\n", report.pretty());
    std::fs::write("BENCH_PR8.json", &json).expect("write BENCH_PR8.json");
    println!("{json}");
    eprintln!(
        "runner_bench: {} jobs × {} insts; insts path {insts_path_secs:.2}s \
         (gen {trace_gen_secs:.2} + sim {sim_insts_secs:.2} + eir {eir_insts_secs:.2}), \
         block path {blocks_path_secs:.2}s \
         (build {stream_build_secs:.2} + sim {sim_blocks_secs:.2} + eir {eir_blocks_secs:.2}) \
         => {block_speedup:.2}x; parallel {parallel_secs:.2}s on {threads} threads \
         ({parallel_speedup:.2}x); compression {compression:.1}x, \
         mean run {mean_run_len:.1}",
        jobs.len(),
        cfg.trace_len,
    );

    if let Ok(gate) = std::env::var("FETCHMECH_PERF_GATE") {
        let floor: f64 = gate
            .parse()
            .unwrap_or_else(|_| panic!("FETCHMECH_PERF_GATE must be a number, got {gate:?}"));
        if cfg!(debug_assertions) {
            eprintln!(
                "runner_bench: FETCHMECH_PERF_GATE={floor} ignored in debug builds \
                 (the block path re-runs the differential oracle there)"
            );
        } else {
            assert!(
                block_speedup >= floor,
                "perf gate: block-stream path is {block_speedup:.2}x vs the \
                 per-instruction path, below the required {floor}x floor"
            );
            eprintln!("runner_bench: perf gate passed ({block_speedup:.2}x >= {floor}x)");
        }
    }
}
