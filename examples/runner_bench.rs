//! Timing smoke test for the parallel experiment runner: runs one reduced
//! (machine × scheme × benchmark) grid twice — serial, then with the
//! environment-configured worker pool — checks the results are identical,
//! and writes the wall-clock numbers plus trace-cache counters to
//! `BENCH_PR3.json` for CI to archive.
//!
//! ```text
//! cargo run --release --example runner_bench
//! ```

use std::time::Instant;

use fetchmech::experiments::{ExpConfig, Lab, LayoutVariant};
use fetchmech::json::Value;
use fetchmech::pipeline::MachineModel;
use fetchmech::workloads::WorkloadClass;
use fetchmech::{SchemeKind, SimResult};

fn grid(lab: &Lab) -> Vec<(MachineModel, SchemeKind, &'static str)> {
    let mut jobs = Vec::new();
    for machine in [MachineModel::p14(), MachineModel::p112()] {
        for scheme in SchemeKind::ALL {
            for bench in lab.class_names(WorkloadClass::Int) {
                jobs.push((machine.clone(), scheme, bench));
            }
        }
    }
    jobs
}

fn run_grid(lab: &Lab) -> Vec<SimResult> {
    let jobs = grid(lab);
    lab.runner().run(&jobs, |(machine, scheme, bench)| {
        lab.run(machine, *scheme, bench, LayoutVariant::Natural)
    })
}

fn main() {
    let cfg = ExpConfig {
        trace_len: 20_000,
        profile_len: 8_000,
    };

    // Fresh lab per timing so each pays its own trace generations — the
    // comparison is end-to-end (generate + simulate), not simulate-only.
    let serial_lab = Lab::with_threads(cfg, 1);
    let start = Instant::now();
    let serial_results = run_grid(&serial_lab);
    let serial_secs = start.elapsed().as_secs_f64();

    let parallel_lab = Lab::new(cfg);
    let threads = parallel_lab.runner().threads();
    let start = Instant::now();
    let parallel_results = run_grid(&parallel_lab);
    let parallel_secs = start.elapsed().as_secs_f64();

    assert_eq!(
        serial_results, parallel_results,
        "serial and parallel runs must be bit-identical"
    );

    let stats = parallel_lab.cache_stats();
    let jobs = serial_results.len();
    let speedup = serial_secs / parallel_secs;
    let report = Value::object([
        ("grid_jobs", Value::Uint(jobs as u64)),
        (
            "serial_secs",
            Value::Num((serial_secs * 1000.0).round() / 1000.0),
        ),
        (
            "parallel_secs",
            Value::Num((parallel_secs * 1000.0).round() / 1000.0),
        ),
        ("threads", Value::Uint(threads as u64)),
        ("speedup", Value::Num((speedup * 1000.0).round() / 1000.0)),
        ("trace_generations", Value::Uint(stats.trace_generations)),
        ("trace_hits", Value::Uint(stats.trace_hits)),
    ]);
    let json = format!("{}\n", report.pretty());
    std::fs::write("BENCH_PR3.json", &json).expect("write BENCH_PR3.json");
    println!("{json}");
    eprintln!(
        "runner_bench: {jobs} jobs, serial {serial_secs:.2}s, \
         parallel {parallel_secs:.2}s on {threads} threads ({speedup:.2}x)"
    );
}
