//! Fetch anatomy: watch the alignment mechanisms work cycle by cycle.
//!
//! Builds a tiny hand-written program containing a hammock (a short forward
//! intra-block branch), warms the BTB, and prints the packet each scheme
//! delivers per cycle — making it visible *why* the collapsing buffer wins:
//! it is the only scheme that delivers the branch, skips the hammock gap,
//! and continues, all in one cycle.
//!
//! ```text
//! cargo run --release --example fetch_anatomy
//! ```

use fetchmech::isa::{
    disasm, Inst, Layout, LayoutOptions, OpClass, ProgramBuilder, Reg, Terminator,
};
use fetchmech::pipeline::{FetchUnit, MachineModel};
use fetchmech::sim::build_fetch_unit;
use fetchmech::workloads::{BehaviorMap, BranchModel, Executor, InputId};
use fetchmech::SchemeKind;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A loop whose body contains a hammock: the branch at the top of the
    // body usually skips two instructions, landing in the same 16-byte
    // cache block.
    let mut b = ProgramBuilder::new();
    let f = b.begin_func();
    let head = b.new_block(f);
    let then_blk = b.new_block(f);
    let join = b.new_block(f);
    let exit = b.new_block(f);
    b.push_inst(
        head,
        Inst::new(
            OpClass::IntAlu,
            Some(Reg::int(1)),
            [Some(Reg::int(1)), None],
        ),
    );
    // Hammock: usually skip `then_blk`. The skipped region is one
    // instruction, so the branch and its target share a 16-byte cache block
    // (a Table 2 "intra-block branch").
    let skip = b.set_cond_branch(head, [Some(Reg::int(1)), None], join, then_blk);
    b.push_inst(
        then_blk,
        Inst::new(OpClass::Load, Some(Reg::int(3)), [Some(Reg::int(2)), None]),
    );
    b.set_terminator(then_blk, Terminator::FallThrough { next: join });
    b.push_inst(
        join,
        Inst::new(
            OpClass::IntAlu,
            Some(Reg::int(4)),
            [Some(Reg::int(1)), None],
        ),
    );
    b.push_inst(
        join,
        Inst::new(OpClass::Store, None, [Some(Reg::int(4)), Some(Reg::int(1))]),
    );
    // Loop back to head most of the time.
    let back = b.set_cond_branch(join, [Some(Reg::int(4)), None], head, exit);
    b.set_terminator(exit, Terminator::Halt);
    b.set_entry(head);
    let program = b.finish()?;

    let machine = MachineModel::p14();
    let layout = Layout::natural(&program, LayoutOptions::new(machine.block_bytes))?;
    println!("program ({}-byte cache blocks):", machine.block_bytes);
    for inst in layout.code() {
        let marker = if inst.addr.offset_words(machine.block_bytes) == 0 {
            "|"
        } else {
            " "
        };
        println!("  {marker} {}", disasm(inst));
    }

    // Behaviour: skip the hammock 85% of the time; loop for ~50 iterations.
    let behaviors = BehaviorMap::new({
        let mut v = vec![BranchModel::Bernoulli(0.5); program.num_branches() as usize];
        v[skip.0 as usize] = BranchModel::Bernoulli(0.85);
        v[back.0 as usize] = BranchModel::Loop { mean_trips: 50.0 };
        v
    });

    for scheme in [
        SchemeKind::Sequential,
        SchemeKind::BankedSequential,
        SchemeKind::CollapsingBuffer,
    ] {
        let trace: Vec<_> = Executor::new(
            &program,
            &layout,
            behaviors.clone(),
            InputId::TEST,
            7,
            4_000,
        )
        .collect();
        let mut unit = build_fetch_unit(&machine, scheme, trace);
        // Warm the caches and predictor on the first ~2000 instructions.
        let mut cycle = 0u64;
        let mut consumed = 0usize;
        while consumed < 2_000 {
            let p = unit.cycle(cycle, 0);
            if p.ends_mispredicted() {
                unit.on_mispredict_resolved(cycle + 1);
            }
            consumed += p.len();
            cycle += 1;
        }
        // Show a few steady-state cycles.
        println!("\n{scheme} (steady state):");
        let mut shown = 0;
        while shown < 4 {
            cycle += 1;
            let p = unit.cycle(cycle, 0);
            if p.ends_mispredicted() {
                unit.on_mispredict_resolved(cycle + 1);
            }
            if p.is_empty() {
                continue;
            }
            let ops: Vec<String> = p
                .insts
                .iter()
                .map(|fi| format!("{}@{}", fi.inst.op.mnemonic(), fi.inst.addr))
                .collect();
            println!("  cycle +{shown}: [{}]", ops.join(", "));
            shown += 1;
        }
        println!(
            "  collapsed intra-block branches: {}, crossed inter-block: {}",
            unit.stats().collapsed,
            unit.stats().crossed_taken
        );
    }
    Ok(())
}
