//! Smoke client for `fetchmech-serve`: checks `/healthz`, fires a burst of
//! concurrent `/v1/simulate` requests (verifying identical keys give
//! byte-identical bodies), runs the same `/v1/sweep` twice to exercise the
//! lab caches, then writes a throughput/latency summary to
//! `BENCH_PR5.json`.
//!
//! With a second argument naming a frontend program file (`.bril.json` /
//! `.json` / `.wat`), the client also uploads it via `POST /v1/programs`
//! and sweeps the returned content-hash id across every scheme, twice,
//! asserting byte-identical results.
//!
//! ```text
//! cargo run --release --example serve_client -- 127.0.0.1:8321 \
//!     examples/programs/loopmix.bril.json
//! ```

use std::io::{Read, Write};
use std::net::TcpStream;
use std::time::{Duration, Instant};

use fetchmech::json::{parse, Value};

const CLIENTS: usize = 32;

/// Retry policy for shed responses (429/503): capped exponential backoff
/// with deterministic jitter, honoring the server's `Retry-After` hint.
const MAX_ATTEMPTS: u32 = 6;
const BACKOFF_BASE_MS: u64 = 50;
const BACKOFF_CAP_MS: u64 = 2_000;

/// One raw HTTP exchange; returns `(status, body, retry_after_secs)`.
fn request(
    addr: &str,
    method: &str,
    path: &str,
    body: &str,
) -> Result<(u16, String, Option<u64>), String> {
    let mut stream = TcpStream::connect(addr).map_err(|e| format!("connect {addr}: {e}"))?;
    stream
        .set_read_timeout(Some(Duration::from_secs(120)))
        .map_err(|e| e.to_string())?;
    let head = format!(
        "{method} {path} HTTP/1.1\r\nHost: {addr}\r\nContent-Length: {}\r\nConnection: close\r\n\r\n",
        body.len()
    );
    stream
        .write_all(head.as_bytes())
        .and_then(|()| stream.write_all(body.as_bytes()))
        .map_err(|e| format!("write: {e}"))?;
    let mut raw = Vec::new();
    stream
        .read_to_end(&mut raw)
        .map_err(|e| format!("read: {e}"))?;
    let text = String::from_utf8(raw).map_err(|_| "response is not UTF-8".to_string())?;
    let (head, body) = text
        .split_once("\r\n\r\n")
        .ok_or_else(|| "malformed response".to_string())?;
    let status: u16 = head
        .split(' ')
        .nth(1)
        .and_then(|s| s.parse().ok())
        .ok_or_else(|| "malformed status line".to_string())?;
    let retry_after = head.lines().find_map(|line| {
        let (name, value) = line.split_once(':')?;
        name.eq_ignore_ascii_case("retry-after")
            .then(|| value.trim().parse().ok())?
    });
    Ok((status, body.to_string(), retry_after))
}

/// Deterministic jitter in `[0, spread)` from an FNV-1a hash of the request
/// identity and attempt — replayable, yet de-synchronized across clients.
fn jitter_ms(tag: &str, attempt: u32, spread: u64) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in tag.as_bytes().iter().chain(&attempt.to_le_bytes()) {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    if spread == 0 {
        0
    } else {
        h % spread
    }
}

/// The shed-aware request loop: 429/503 responses are retried with capped
/// exponential backoff + deterministic jitter, preferring the server's
/// `Retry-After` hint when present. Everything else returns immediately.
fn request_with_retry(
    addr: &str,
    method: &str,
    path: &str,
    body: &str,
) -> Result<(u16, String), String> {
    let mut last = None;
    for attempt in 0..MAX_ATTEMPTS {
        let (status, resp, retry_after) = request(addr, method, path, body)?;
        if status != 429 && status != 503 {
            return Ok((status, resp));
        }
        last = Some((status, resp));
        if attempt + 1 == MAX_ATTEMPTS {
            break;
        }
        let exp = BACKOFF_BASE_MS
            .saturating_mul(1 << attempt)
            .min(BACKOFF_CAP_MS);
        let hinted = retry_after.map(|secs| (secs.saturating_mul(1000)).min(BACKOFF_CAP_MS));
        let base = hinted.unwrap_or(exp);
        let sleep = base + jitter_ms(&format!("{method} {path} {body}"), attempt, exp.max(1));
        eprintln!(
            "serve_client: {method} {path} shed with {status} \
             (attempt {attempt}, backing off {sleep} ms)"
        );
        std::thread::sleep(Duration::from_millis(sleep));
    }
    let (status, resp) = last.expect("at least one attempt");
    Ok((status, resp))
}

fn check(addr: &str, method: &str, path: &str, body: &str) -> (u16, String) {
    match request_with_retry(addr, method, path, body) {
        Ok(resp) => resp,
        Err(e) => {
            eprintln!("serve_client: {method} {path}: {e}");
            std::process::exit(1);
        }
    }
}

fn main() {
    let addr = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "127.0.0.1:8321".to_string());

    let (status, body) = check(&addr, "GET", "/healthz", "");
    assert_eq!(status, 200, "healthz failed: {body}");
    let health = parse(&body).expect("healthz is valid JSON");
    assert_eq!(health.get("status").and_then(Value::as_str), Some("ok"));

    // Concurrent burst: CLIENTS clients over 8 distinct request bodies;
    // responses for the same body must be byte-identical.
    let bodies: Vec<String> = ["compress", "eqntott"]
        .iter()
        .flat_map(|bench| {
            ["sequential", "banked", "collapsing", "perfect"]
                .iter()
                .map(move |scheme| {
                    format!("{{\"bench\": \"{bench}\", \"scheme\": \"{scheme}\", \"insts\": 2000}}")
                })
        })
        .collect();
    let burst_start = Instant::now();
    let handles: Vec<_> = (0..CLIENTS)
        .map(|i| {
            let addr = addr.clone();
            let body = bodies[i % bodies.len()].clone();
            std::thread::spawn(move || {
                let t0 = Instant::now();
                let (status, resp) = check(&addr, "POST", "/v1/simulate", &body);
                (i % 8, status, resp, t0.elapsed())
            })
        })
        .collect();
    let mut canonical: Vec<Option<String>> = vec![None; 8];
    let mut latencies = Vec::with_capacity(CLIENTS);
    for handle in handles {
        let (slot, status, resp, elapsed) = handle.join().expect("client thread");
        assert_eq!(status, 200, "simulate failed: {resp}");
        match &canonical[slot] {
            None => canonical[slot] = Some(resp),
            Some(first) => assert_eq!(first, &resp, "identical requests diverged"),
        }
        latencies.push(elapsed);
    }
    let burst_secs = burst_start.elapsed().as_secs_f64();

    // The same sweep twice: the repeat must be byte-identical and must hit
    // the server's trace cache.
    let sweep = "{\"benches\": [\"compress\", \"eqntott\"], \
                 \"schemes\": [\"sequential\", \"collapsing\"], \"insts\": 2000}";
    let (status, first) = check(&addr, "POST", "/v1/sweep", sweep);
    assert_eq!(status, 200, "sweep failed: {first}");
    let (status, second) = check(&addr, "POST", "/v1/sweep", sweep);
    assert_eq!(status, 200);
    assert_eq!(first, second, "repeated sweep diverged");

    // Optional: upload a frontend program and sweep it end-to-end.
    if let Some(path) = std::env::args().nth(2) {
        let format = if path.to_ascii_lowercase().ends_with(".wat") {
            "wat"
        } else {
            "bril"
        };
        let source = std::fs::read_to_string(&path).unwrap_or_else(|e| {
            eprintln!("serve_client: read {path}: {e}");
            std::process::exit(1);
        });
        let upload = Value::object([
            ("format", Value::Str(format.to_string())),
            ("source", Value::Str(source)),
        ])
        .pretty();
        let (status, body) = check(&addr, "POST", "/v1/programs", &upload);
        assert_eq!(status, 200, "program upload failed: {body}");
        let doc = parse(&body).expect("upload response is JSON");
        let id = doc
            .get("id")
            .and_then(Value::as_str)
            .expect("upload response has an id")
            .to_string();
        assert!(id.starts_with("prog-"), "content-hash id: {id}");
        let prog_sweep = format!("{{\"benches\": [\"{id}\"], \"insts\": 2000}}");
        let (status, first) = check(&addr, "POST", "/v1/sweep", &prog_sweep);
        assert_eq!(status, 200, "program sweep failed: {first}");
        let (status, second) = check(&addr, "POST", "/v1/sweep", &prog_sweep);
        assert_eq!(status, 200);
        assert_eq!(first, second, "repeated program sweep diverged");
        eprintln!("serve_client: uploaded {path} as {id}, swept all schemes twice");
    }

    let (status, body) = check(&addr, "GET", "/metrics", "");
    assert_eq!(status, 200);
    let m = parse(&body).expect("metrics is valid JSON");
    let cache_hits = m
        .get("lab_cache")
        .and_then(|c| c.get("trace_hits"))
        .and_then(Value::as_u64)
        .expect("metrics reports lab_cache.trace_hits");
    assert!(cache_hits > 0, "repeated sweeps must hit the trace cache");
    let ok_200 = m
        .get("responses")
        .and_then(|r| r.get("ok_200"))
        .and_then(Value::as_u64)
        .unwrap_or(0);

    latencies.sort();
    let p50_ms = latencies[latencies.len() / 2].as_secs_f64() * 1000.0;
    let p99_ms = latencies[latencies.len() - 1].as_secs_f64() * 1000.0;
    #[allow(clippy::cast_precision_loss)]
    let throughput = CLIENTS as f64 / burst_secs;
    let report = Value::object([
        ("clients", Value::Uint(CLIENTS as u64)),
        (
            "burst_secs",
            Value::Num((burst_secs * 1000.0).round() / 1000.0),
        ),
        (
            "requests_per_sec",
            Value::Num((throughput * 100.0).round() / 100.0),
        ),
        ("p50_ms", Value::Num((p50_ms * 100.0).round() / 100.0)),
        ("max_ms", Value::Num((p99_ms * 100.0).round() / 100.0)),
        ("ok_200", Value::Uint(ok_200)),
        ("trace_cache_hits", Value::Uint(cache_hits)),
    ]);
    let json = format!("{}\n", report.pretty());
    std::fs::write("BENCH_PR5.json", &json).expect("write BENCH_PR5.json");
    println!("{json}");
    eprintln!(
        "serve_client: {CLIENTS} clients in {burst_secs:.2}s \
         ({throughput:.1} req/s), trace cache hits {cache_hits}"
    );
}
