//! `fetchmech-serve`: the concurrent experiment service.
//!
//! ```text
//! fetchmech-serve [OPTIONS]
//!
//!   --addr HOST:PORT    bind address (default 127.0.0.1:8321; port 0 picks
//!                       an ephemeral port, reported on stdout)
//!   --threads N         worker-pool size (default: FETCHMECH_THREADS or
//!                       available parallelism)
//!   --queue N           bounded job-queue capacity (default 128)
//!   --deadline-ms N     default per-request deadline (default 30000)
//!   --insts N           default trace length per request (default 20000)
//!   --max-insts N       largest accepted trace length (default 500000)
//!   --store PATH        persist results to this append-only log; hits are
//!                       served from it across restarts
//!   --quick             size the lab for CI (short profile/reorder traces)
//!   --help              print this help
//! ```
//!
//! Endpoints: `POST /v1/simulate`, `POST /v1/sweep`, `POST /v1/programs`
//! (upload a Bril/WAT program, registered under a content-hash id usable
//! as a bench name), `GET /healthz`, `GET /metrics`. The process runs
//! until SIGINT/SIGTERM, then drains in-flight work before exiting.
//!
//! Deterministic fault injection (chaos testing) is driven by environment:
//! `FETCHMECH_FAULTS=store_write=0.2,store_short_write=0.3,store_sync=0.1,sim_panic=0.05`
//! enables the listed fault classes and `FETCHMECH_FAULT_SEED=N` makes the
//! schedule replayable. See `fetchmech_repro::store::fault`.

use std::process::ExitCode;
use std::sync::atomic::{AtomicBool, Ordering};
use std::time::Duration;

use fetchmech::experiments::ExpConfig;
use fetchmech_repro::serve::{ServeConfig, Server};

/// Set by the signal handler; polled by the main loop.
static SHUTDOWN: AtomicBool = AtomicBool::new(false);

const SIGINT: i32 = 2;
const SIGTERM: i32 = 15;

extern "C" fn on_signal(_sig: i32) {
    SHUTDOWN.store(true, Ordering::SeqCst);
}

/// Installs `on_signal` for SIGINT and SIGTERM via the C `signal` shim (the
/// only process-wide hook available without a libc crate).
fn install_signal_handlers() {
    extern "C" {
        fn signal(signum: i32, handler: usize) -> usize;
    }
    // SAFETY: `on_signal` only touches an AtomicBool, which is async-signal
    // safe; the handler pointer outlives the process.
    unsafe {
        signal(SIGINT, on_signal as *const () as usize);
        signal(SIGTERM, on_signal as *const () as usize);
    }
}

fn usage() -> &'static str {
    "usage: fetchmech-serve [--addr HOST:PORT] [--threads N] [--queue N] \
     [--deadline-ms N] [--insts N] [--max-insts N] [--store PATH] [--quick]"
}

fn parse_args(args: &[String]) -> Result<Option<ServeConfig>, String> {
    let mut config = ServeConfig {
        addr: "127.0.0.1:8321".to_string(),
        ..ServeConfig::default()
    };
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--addr" => {
                config.addr = it.next().ok_or("--addr needs HOST:PORT")?.clone();
            }
            "--threads" => {
                let n = it.next().ok_or("--threads needs a count")?;
                let n: usize = n.parse().map_err(|_| format!("bad --threads value {n}"))?;
                config.threads = Some(n);
            }
            "--queue" => {
                let n = it.next().ok_or("--queue needs a capacity")?;
                config.queue_capacity = n.parse().map_err(|_| format!("bad --queue value {n}"))?;
            }
            "--deadline-ms" => {
                let n = it.next().ok_or("--deadline-ms needs a count")?;
                config.default_deadline_ms = n
                    .parse()
                    .map_err(|_| format!("bad --deadline-ms value {n}"))?;
            }
            "--insts" => {
                let n = it.next().ok_or("--insts needs a count")?;
                config.default_insts = n.parse().map_err(|_| format!("bad --insts value {n}"))?;
            }
            "--max-insts" => {
                let n = it.next().ok_or("--max-insts needs a count")?;
                config.max_insts = n
                    .parse()
                    .map_err(|_| format!("bad --max-insts value {n}"))?;
            }
            "--store" => {
                let path = it.next().ok_or("--store needs a PATH")?;
                config.store_path = Some(path.into());
            }
            "--quick" => config.exp = ExpConfig::quick(),
            "--help" | "-h" => {
                println!("{}", usage());
                return Ok(None);
            }
            other => return Err(format!("unknown option {other}")),
        }
    }
    Ok(Some(config))
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut config = match parse_args(&args) {
        Ok(Some(config)) => config,
        Ok(None) => return ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("fetchmech-serve: {e}");
            eprintln!("{}", usage());
            return ExitCode::from(2);
        }
    };
    config.fault = fetchmech_repro::store::FaultPlan::from_env();
    if let Some(plan) = &config.fault {
        eprintln!("fetchmech-serve: deterministic fault injection ACTIVE (seed {:#x}); not for production", plan.seed);
    }

    let server = match Server::start(config) {
        Ok(server) => server,
        Err(e) => {
            eprintln!("fetchmech-serve: bind failed: {e}");
            return ExitCode::FAILURE;
        }
    };
    // The smoke harness greps this exact line to learn the ephemeral port.
    println!("fetchmech-serve listening on http://{}", server.addr());

    install_signal_handlers();
    while !SHUTDOWN.load(Ordering::SeqCst) {
        std::thread::sleep(Duration::from_millis(50));
    }

    println!("fetchmech-serve: shutting down, draining in-flight work");
    server.shutdown();
    println!("fetchmech-serve: drained, bye");
    ExitCode::SUCCESS
}
