//! `fetchmech-lint`: run the verification passes over suite benchmarks, and
//! the cycle-level sanitizer over live simulations.
//!
//! ```text
//! fetchmech-lint [OPTIONS] [BENCHMARK...]
//!
//!   BENCHMARK           suite benchmark names (default: the full suite)
//!   --json              emit diagnostics as a JSON array
//!   --pass NAME         run only the named pass (repeatable)
//!   --insts N           profiling/diff instruction budget (default 20000)
//!   --deny-warnings     exit nonzero on warnings too
//!   --list-passes       print the registered passes and their rules
//!   --help              print this help
//!
//! fetchmech-lint sanitize [OPTIONS] [BENCHMARK...]
//!
//!   BENCHMARK           suite benchmark names (default: the full suite)
//!   --machine NAME      p14 | p18 | p112 (default p14)
//!   --insts N           dynamic trace length per run (default 20000)
//!   --short             quick mode for CI: 4000-instruction traces
//!   --threads N         worker threads for the per-benchmark fan-out
//!                       (default: FETCHMECH_THREADS or available
//!                       parallelism; a conflicting env var warns once)
//!   --disable RULE      disable one sanitizer rule id (repeatable)
//!   --json              emit diagnostics as a JSON array
//!   --list              print the sanitizer rule catalog
//!   --self-test         feed the engine its built-in corrupted event
//!                       streams; findings are EXPECTED (exits 1)
//!   --help              print this help
//! ```
//!
//! The default mode generates each workload, collects a profile, selects
//! traces, reorders, lays out (natural, reordered, pad-all, pad-trace), and
//! runs every applicable pass over each artifact — including the dynamic
//! trace diff. The `sanitize` mode instead executes each workload and runs
//! the full simulator under the cycle-level sanitizer for every fetch
//! scheme, then the cross-scheme EIR dominance harness over one shared
//! trace. Exit status is 1 if any error-severity diagnostic was produced,
//! 2 on usage errors.

use std::process::ExitCode;
use std::sync::Arc;

use fetchmech::compiler::{layout_pad_all, reorder, select_traces, Profile, TraceSelectConfig};
use fetchmech::isa::{DynInst, Layout, LayoutOptions};
use fetchmech::json::diagnostics_json;
use fetchmech::pipeline::MachineModel;
use fetchmech::runner::Runner;
use fetchmech::workloads::{suite, InputId};
use fetchmech::SchemeKind;
use fetchmech_analysis::sanitize::{self_test, RULES};
use fetchmech_analysis::{report_human, Diagnostic, Registry, SanitizeConfig, Severity, Target};

const BLOCK_BYTES: u64 = 16;

struct Options {
    benchmarks: Vec<String>,
    json: bool,
    passes: Vec<String>,
    insts: u64,
    deny_warnings: bool,
}

fn usage() -> &'static str {
    "usage: fetchmech-lint [--json] [--pass NAME]... [--insts N] \
     [--deny-warnings] [--list-passes] [BENCHMARK...]"
}

fn list_passes() {
    let registry = Registry::with_default_passes();
    for pass in registry.passes() {
        println!("{}: {}", pass.name(), pass.description());
        for rule in pass.rules() {
            println!("  {rule}");
        }
    }
}

fn parse_args(args: &[String]) -> Result<Option<Options>, String> {
    let mut opts = Options {
        benchmarks: Vec::new(),
        json: false,
        passes: Vec::new(),
        insts: 20_000,
        deny_warnings: false,
    };
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--json" => opts.json = true,
            "--deny-warnings" => opts.deny_warnings = true,
            "--list-passes" => {
                list_passes();
                return Ok(None);
            }
            "--pass" => {
                let name = it.next().ok_or("--pass needs a pass name")?;
                opts.passes.push(name.clone());
            }
            "--insts" => {
                let n = it.next().ok_or("--insts needs a count")?;
                opts.insts = n.parse().map_err(|_| format!("bad --insts value {n}"))?;
            }
            "--help" | "-h" => {
                println!("{}", usage());
                return Ok(None);
            }
            other if other.starts_with('-') => {
                return Err(format!("unknown option {other}"));
            }
            name => opts.benchmarks.push(name.to_string()),
        }
    }
    if opts.benchmarks.is_empty() {
        opts.benchmarks = suite::INT_NAMES
            .iter()
            .chain(suite::FP_NAMES.iter())
            .map(ToString::to_string)
            .collect();
    }
    Ok(Some(opts))
}

fn lint_benchmark(
    name: &str,
    opts: &Options,
    registry: &Registry,
) -> Result<Vec<Diagnostic>, String> {
    let w = suite::benchmark(name).ok_or_else(|| format!("unknown benchmark {name}"))?;
    let profile = Profile::collect(&w, &InputId::PROFILE, opts.insts);
    let config = TraceSelectConfig::default();
    let traces = select_traces(&w.program, &profile, &config);
    let reordered = reorder(&w.program, &profile, &config);
    let natural = Layout::natural(&w.program, LayoutOptions::new(BLOCK_BYTES))
        .map_err(|e| format!("{name}: natural layout failed: {e}"))?;
    let pad_all = layout_pad_all(&w.program, BLOCK_BYTES)
        .map_err(|e| format!("{name}: pad-all layout failed: {e}"))?;
    let opt_layout = reordered
        .layout(BLOCK_BYTES)
        .map_err(|e| format!("{name}: reordered layout failed: {e}"))?;
    let pad_trace = reordered
        .layout_pad_trace(BLOCK_BYTES)
        .map_err(|e| format!("{name}: pad-trace layout failed: {e}"))?;

    let targets = [
        Target::Program(&w.program),
        Target::Layout {
            program: &w.program,
            layout: &natural,
        },
        Target::Layout {
            program: &w.program,
            layout: &pad_all,
        },
        Target::Layout {
            program: &reordered.program,
            layout: &opt_layout,
        },
        Target::Layout {
            program: &reordered.program,
            layout: &pad_trace,
        },
        Target::Profile {
            program: &w.program,
            profile: &profile,
            config: Some(&config),
        },
        Target::Traces {
            program: &w.program,
            traces: &traces,
        },
        Target::Transform {
            original: &w.program,
            reordered: &reordered,
        },
        Target::TraceDiff {
            workload: &w,
            reordered: &reordered,
            insts: opts.insts,
        },
    ];
    let keep = |pass: &str| opts.passes.is_empty() || opts.passes.iter().any(|p| p == pass);
    let mut diags = Vec::new();
    for target in &targets {
        diags.extend(registry.run_filtered(target, keep));
    }
    Ok(diags)
}

// ---------------------------------------------------------------------------
// The `sanitize` subcommand: drive the simulator under the cycle sanitizer.
// ---------------------------------------------------------------------------

struct SanOptions {
    benchmarks: Vec<String>,
    machine: MachineModel,
    insts: u64,
    json: bool,
    disabled: Vec<String>,
    threads: Option<usize>,
}

impl SanOptions {
    fn config(&self) -> SanitizeConfig {
        let mut cfg = SanitizeConfig::new();
        for rule in &self.disabled {
            cfg.disable(rule.clone());
        }
        cfg
    }

    fn keeps(&self, rule: &str) -> bool {
        !self.disabled.iter().any(|d| d == rule)
    }
}

fn sanitize_usage() -> &'static str {
    "usage: fetchmech-lint sanitize [--machine p14|p18|p112] [--insts N] \
     [--short] [--threads N] [--disable RULE]... [--json] [--list] [--self-test] \
     [BENCHMARK...]"
}

fn list_sanitize_rules() {
    for (rule, summary) in RULES {
        println!("{rule}: {summary}");
    }
}

fn parse_sanitize_args(args: &[String]) -> Result<Option<SanOptions>, String> {
    let mut opts = SanOptions {
        benchmarks: Vec::new(),
        machine: MachineModel::p14(),
        insts: 20_000,
        json: false,
        disabled: Vec::new(),
        threads: None,
    };
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--json" => opts.json = true,
            "--short" => opts.insts = 4_000,
            "--list" => {
                list_sanitize_rules();
                return Ok(None);
            }
            "--machine" => {
                let name = it.next().ok_or("--machine needs a model name")?;
                opts.machine = match name.as_str() {
                    "p14" => MachineModel::p14(),
                    "p18" => MachineModel::p18(),
                    "p112" => MachineModel::p112(),
                    other => return Err(format!("unknown machine model {other}")),
                };
            }
            "--insts" => {
                let n = it.next().ok_or("--insts needs a count")?;
                opts.insts = n.parse().map_err(|_| format!("bad --insts value {n}"))?;
            }
            "--threads" => {
                let n = it.next().ok_or("--threads needs a count")?;
                opts.threads = Some(n.parse().map_err(|_| format!("bad --threads value {n}"))?);
            }
            "--disable" => {
                let rule = it.next().ok_or("--disable needs a rule id")?;
                opts.disabled.push(rule.clone());
            }
            "--help" | "-h" => {
                println!("{}", sanitize_usage());
                return Ok(None);
            }
            other if other.starts_with('-') => {
                return Err(format!("unknown option {other}"));
            }
            name => opts.benchmarks.push(name.to_string()),
        }
    }
    if opts.benchmarks.is_empty() {
        opts.benchmarks = suite::INT_NAMES
            .iter()
            .chain(suite::FP_NAMES.iter())
            .map(ToString::to_string)
            .collect();
    }
    Ok(Some(opts))
}

fn sanitize_benchmark(name: &str, opts: &SanOptions) -> Result<Vec<Diagnostic>, String> {
    let w = suite::benchmark(name).ok_or_else(|| format!("unknown benchmark {name}"))?;
    let layout = Layout::natural(&w.program, LayoutOptions::new(opts.machine.block_bytes))
        .map_err(|e| format!("{name}: natural layout failed: {e}"))?;
    let trace: Arc<[DynInst]> = w
        .executor(&layout, InputId::TEST, opts.insts)
        .collect::<Vec<_>>()
        .into();
    let mut diags = Vec::new();
    // Full pipeline under the sanitizer, once per scheme.
    for scheme in SchemeKind::ALL {
        let (_result, d) = fetchmech::sanitize::simulate_checked_with(
            &opts.machine,
            scheme,
            &trace,
            opts.config(),
        );
        diags.extend(d);
    }
    // Fetch-only differential harness + cross-scheme dominance, sharing the
    // same zero-copy trace.
    let (_eirs, d) = fetchmech::sanitize::check_dominance(&opts.machine, name, &trace);
    diags.extend(d.into_iter().filter(|d| opts.keeps(d.rule_id)));
    Ok(diags)
}

fn sanitize_main(args: &[String]) -> ExitCode {
    if args.iter().any(|a| a == "--self-test") {
        // Corrupted-by-construction event streams: findings mean the engine
        // still catches what it claims to, and the exit status reports them
        // like any other run (nonzero — the CLI test asserts exactly that).
        let diags = self_test();
        print!("{}", report_human(&diags));
        return if fetchmech_analysis::has_errors(&diags) {
            ExitCode::FAILURE
        } else {
            ExitCode::SUCCESS
        };
    }
    let opts = match parse_sanitize_args(args) {
        Ok(Some(opts)) => opts,
        Ok(None) => return ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("fetchmech-lint: {e}");
            eprintln!("{}", sanitize_usage());
            return ExitCode::from(2);
        }
    };
    let known: Vec<&str> = RULES.iter().map(|(rule, _)| *rule).collect();
    for rule in &opts.disabled {
        if !known.contains(&rule.as_str()) {
            eprintln!("fetchmech-lint: unknown sanitizer rule {rule} (see sanitize --list)");
            return ExitCode::from(2);
        }
    }
    // Benchmarks are independent: fan out on the worker pool, then report
    // in suite order so output (and the JSON array) stays deterministic.
    let runner = Runner::from_flag_or_env(opts.threads);
    let results = runner.run(&opts.benchmarks, |name| sanitize_benchmark(name, &opts));
    let mut all = Vec::new();
    let mut failed = false;
    for (name, result) in opts.benchmarks.iter().zip(results) {
        match result {
            Ok(diags) => {
                if !opts.json {
                    let errors = diags
                        .iter()
                        .filter(|d| d.severity == Severity::Error)
                        .count();
                    println!("{name}: {} finding(s), {errors} error(s)", diags.len());
                    if !diags.is_empty() {
                        print!("{}", report_human(&diags));
                    }
                }
                all.extend(diags);
            }
            Err(e) => {
                eprintln!("fetchmech-lint: {e}");
                failed = true;
            }
        }
    }
    if opts.json {
        println!("{}", diagnostics_json(&all));
    }
    if failed || all.iter().any(|d| d.severity == Severity::Error) {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.first().map(String::as_str) == Some("sanitize") {
        return sanitize_main(&args[1..]);
    }
    let opts = match parse_args(&args) {
        Ok(Some(opts)) => opts,
        Ok(None) => return ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("fetchmech-lint: {e}");
            eprintln!("{}", usage());
            return ExitCode::from(2);
        }
    };

    let registry = Registry::with_default_passes();
    for name in &opts.passes {
        if !registry.passes().iter().any(|p| p.name() == name) {
            eprintln!("fetchmech-lint: unknown pass {name} (see --list-passes)");
            return ExitCode::from(2);
        }
    }
    let mut all = Vec::new();
    let mut failed = false;
    for name in &opts.benchmarks {
        match lint_benchmark(name, &opts, &registry) {
            Ok(diags) => {
                if !opts.json {
                    let errors = diags
                        .iter()
                        .filter(|d| d.severity == Severity::Error)
                        .count();
                    println!("{name}: {} finding(s), {errors} error(s)", diags.len());
                    if !diags.is_empty() {
                        print!("{}", report_human(&diags));
                    }
                }
                all.extend(diags);
            }
            Err(e) => {
                eprintln!("fetchmech-lint: {e}");
                failed = true;
            }
        }
    }
    if opts.json {
        println!("{}", diagnostics_json(&all));
    }
    let bad = all.iter().any(|d| {
        d.severity == Severity::Error || (opts.deny_warnings && d.severity == Severity::Warning)
    });
    if failed || bad {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}
