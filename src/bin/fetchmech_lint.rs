//! `fetchmech-lint`: run the verification passes over suite benchmarks, and
//! the cycle-level sanitizer over live simulations.
//!
//! ```text
//! fetchmech-lint [OPTIONS] [BENCHMARK...]
//!
//!   BENCHMARK           suite benchmark names (default: the full suite)
//!   --json              emit diagnostics as a JSON array
//!   --pass NAME         run only the named pass (repeatable)
//!   --disable RULE      drop findings of one rule id (repeatable)
//!   --insts N           profiling/diff instruction budget (default 20000)
//!   --deny-warnings     exit nonzero on warnings too
//!   --list, --list-passes
//!                       print the registered passes and their rules
//!   --help              print this help
//!
//! fetchmech-lint analyze [OPTIONS] [BENCHMARK...]
//!
//!   BENCHMARK           suite benchmark names (default: the full suite)
//!   --machine NAME      p14 | p18 | p112 (default p14)
//!   --layout KIND       natural | pad-all | reordered | pad-trace
//!                       (default natural)
//!   --analysis NAME     reach | dom | live | reachdef | lvn | ssa | geometry
//!                       (repeatable; default: all)
//!   --measured          also measure per-scheme EIR and check it against
//!                       the static bound (sanitize.static_bound)
//!   --insts N           profile/measurement budget (default 20000)
//!   --threads N         worker threads for the per-benchmark fan-out
//!   --disable RULE      drop findings of one rule id (repeatable)
//!   --json              emit one JSON object per benchmark (array)
//!   --list              print the analysis catalog
//!   --help              print this help
//!
//! fetchmech-lint opt [OPTIONS] [BENCHMARK...]
//!
//!   BENCHMARK           suite benchmark names (default: the full suite)
//!   --passes LIST       comma-separated ordered pipeline, from
//!                       lvn | dce | superblock | straighten (default: all)
//!   --machine NAME      p14 | p18 | p112 (default p14), for the EIR report
//!   --verify            translation-validate the pipeline result (static
//!                       rules + dynamic trace equivalence per pass)
//!   --insts N           profile/verification budget (default 20000)
//!   --threads N         worker threads for the per-benchmark fan-out
//!   --disable RULE      drop findings of one rule id (repeatable)
//!   --json              emit one JSON object per benchmark (array)
//!   --list              print the pass and rule catalog
//!   --self-test         corrupt a pipeline result in-process; findings are
//!                       EXPECTED (exits 1)
//!   --help              print this help
//!
//! fetchmech-lint frontend [OPTIONS] FILE...
//!
//!   FILE                external programs: .bril.json / .json (Bril-style
//!                       JSON CFG) or .wat (flat WebAssembly text)
//!   --machine NAME      p14 | p18 | p112 (default p14)
//!   --insts N           profile/verification budget (default 20000)
//!   --threads N         worker threads for the per-file fan-out
//!   --disable RULE      drop findings of one rule id (repeatable)
//!   --json              emit one JSON object per file (array)
//!   --dump              print each lowered program as assembler-style text
//!   --verify            additionally run the full opt pipeline under
//!                       translation validation and simulate every fetch
//!                       scheme over the lowered program
//!   --list              print the accepted formats and annotations
//!   --help              print this help
//!
//! fetchmech-lint sanitize [OPTIONS] [BENCHMARK...]
//!
//!   BENCHMARK           suite benchmark names (default: the full suite)
//!   --machine NAME      p14 | p18 | p112 (default p14)
//!   --insts N           dynamic trace length per run (default 20000)
//!   --short             quick mode for CI: 4000-instruction traces
//!   --threads N         worker threads for the per-benchmark fan-out
//!                       (default: FETCHMECH_THREADS or available
//!                       parallelism; a conflicting env var warns once)
//!   --disable RULE      disable one sanitizer rule id (repeatable)
//!   --json              emit diagnostics as a JSON array
//!   --list              print the sanitizer rule catalog
//!   --self-test         feed the engine its built-in corrupted event
//!                       streams; findings are EXPECTED (exits 1)
//!   --help              print this help
//! ```
//!
//! The default mode generates each workload, collects a profile, selects
//! traces, reorders, lays out (natural, reordered, pad-all, pad-trace), and
//! runs every applicable pass over each artifact — including the dynamic
//! trace diff. The `sanitize` mode instead executes each workload and runs
//! the full simulator under the cycle-level sanitizer for every fetch
//! scheme, then the cross-scheme EIR dominance harness over one shared
//! trace. Exit status is 1 if any error-severity diagnostic was produced,
//! 2 on usage errors.

use std::process::ExitCode;
use std::sync::Arc;

use fetchmech::compiler::{
    build_ssa, layout_pad_all, optimize, reorder, select_traces, OptimizeConfig, Optimized,
    PassEdit, PassKind, Profile, TraceSelectConfig,
};
use fetchmech::isa::{BlockId, CfgView, DynInst, Inst, Layout, LayoutOptions};
use fetchmech::json::{diagnostics_json, Value};
use fetchmech::pipeline::MachineModel;
use fetchmech::runner::Runner;
use fetchmech::workloads::{suite, InputId, Workload, WorkloadSpec};
use fetchmech::{simulate, SchemeKind};
use fetchmech_analysis::sanitize::{self_test, RULES};
use fetchmech_analysis::{
    analyze_geometry, check_ssa, dataflow, eir_delta, report_human, verify_optimized, Diagnostic,
    DiagnosticSink, Registry, SanitizeConfig, Severity, Target, OPT_RULES,
};
use fetchmech_frontend::Format;

const BLOCK_BYTES: u64 = 16;

/// Flags every analysis-style subcommand shares (`analyze`, `opt`,
/// `sanitize`, `frontend`). One parser keeps the surface — and the
/// machine-model spelling — from drifting between subcommands.
struct CommonFlags {
    machine: MachineModel,
    insts: u64,
    threads: Option<usize>,
    disabled: Vec<String>,
    json: bool,
}

impl CommonFlags {
    fn new() -> Self {
        CommonFlags {
            machine: MachineModel::p14(),
            insts: 20_000,
            threads: None,
            disabled: Vec::new(),
            json: false,
        }
    }

    /// Consumes `arg` (and its value, if any) when it is a shared flag.
    /// Returns `Ok(false)` for anything subcommand-specific.
    fn parse(&mut self, arg: &str, it: &mut std::slice::Iter<'_, String>) -> Result<bool, String> {
        match arg {
            "--json" => self.json = true,
            "--machine" => {
                let name = it.next().ok_or("--machine needs a model name")?;
                self.machine = MachineModel::by_name(name)
                    .ok_or_else(|| format!("unknown machine model {name}"))?;
            }
            "--insts" => {
                let n = it.next().ok_or("--insts needs a count")?;
                self.insts = n.parse().map_err(|_| format!("bad --insts value {n}"))?;
            }
            "--threads" => {
                let n = it.next().ok_or("--threads needs a count")?;
                self.threads = Some(n.parse().map_err(|_| format!("bad --threads value {n}"))?);
            }
            "--disable" => {
                let rule = it.next().ok_or("--disable needs a rule id")?;
                self.disabled.push(rule.clone());
            }
            _ => return Ok(false),
        }
        Ok(true)
    }
}

/// The full suite, for subcommands that default to it.
fn default_suite() -> Vec<String> {
    suite::INT_NAMES
        .iter()
        .chain(suite::FP_NAMES.iter())
        .map(ToString::to_string)
        .collect()
}

/// The shared `diagnostics` JSON field.
fn diagnostics_value(diags: &[Diagnostic]) -> Value {
    Value::Array(
        diags
            .iter()
            .map(|d| {
                Value::object([
                    ("rule_id", Value::Str(d.rule_id.to_string())),
                    ("severity", Value::Str(d.severity.to_string())),
                    ("location", Value::Str(d.location.to_string())),
                    ("message", Value::Str(d.message.clone())),
                ])
            })
            .collect(),
    )
}

struct Options {
    benchmarks: Vec<String>,
    json: bool,
    passes: Vec<String>,
    disabled: Vec<String>,
    insts: u64,
    deny_warnings: bool,
}

fn usage() -> &'static str {
    "usage: fetchmech-lint [--json] [--pass NAME]... [--disable RULE]... \
     [--insts N] [--deny-warnings] [--list] [BENCHMARK...]"
}

fn list_passes() {
    let registry = Registry::with_default_passes();
    for pass in registry.passes() {
        println!("{}: {}", pass.name(), pass.description());
        for rule in pass.rules() {
            println!("  {rule}");
        }
    }
}

fn parse_args(args: &[String]) -> Result<Option<Options>, String> {
    let mut opts = Options {
        benchmarks: Vec::new(),
        json: false,
        passes: Vec::new(),
        disabled: Vec::new(),
        insts: 20_000,
        deny_warnings: false,
    };
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--json" => opts.json = true,
            "--deny-warnings" => opts.deny_warnings = true,
            "--list" | "--list-passes" => {
                list_passes();
                return Ok(None);
            }
            "--pass" => {
                let name = it.next().ok_or("--pass needs a pass name")?;
                opts.passes.push(name.clone());
            }
            "--disable" => {
                let rule = it.next().ok_or("--disable needs a rule id")?;
                opts.disabled.push(rule.clone());
            }
            "--insts" => {
                let n = it.next().ok_or("--insts needs a count")?;
                opts.insts = n.parse().map_err(|_| format!("bad --insts value {n}"))?;
            }
            "--help" | "-h" => {
                println!("{}", usage());
                return Ok(None);
            }
            other if other.starts_with('-') => {
                return Err(format!("unknown option {other}"));
            }
            name => opts.benchmarks.push(name.to_string()),
        }
    }
    if opts.benchmarks.is_empty() {
        opts.benchmarks = suite::INT_NAMES
            .iter()
            .chain(suite::FP_NAMES.iter())
            .map(ToString::to_string)
            .collect();
    }
    Ok(Some(opts))
}

fn lint_benchmark(
    name: &str,
    opts: &Options,
    registry: &Registry,
) -> Result<Vec<Diagnostic>, String> {
    let w = suite::benchmark(name).ok_or_else(|| format!("unknown benchmark {name}"))?;
    let profile = Profile::collect(&w, &InputId::PROFILE, opts.insts);
    let config = TraceSelectConfig::default();
    let traces = select_traces(&w.program, &profile, &config);
    let reordered = reorder(&w.program, &profile, &config);
    let natural = Layout::natural(&w.program, LayoutOptions::new(BLOCK_BYTES))
        .map_err(|e| format!("{name}: natural layout failed: {e}"))?;
    let pad_all = layout_pad_all(&w.program, BLOCK_BYTES)
        .map_err(|e| format!("{name}: pad-all layout failed: {e}"))?;
    let opt_layout = reordered
        .layout(BLOCK_BYTES)
        .map_err(|e| format!("{name}: reordered layout failed: {e}"))?;
    let pad_trace = reordered
        .layout_pad_trace(BLOCK_BYTES)
        .map_err(|e| format!("{name}: pad-trace layout failed: {e}"))?;

    let targets = [
        Target::Program(&w.program),
        Target::Layout {
            program: &w.program,
            layout: &natural,
        },
        Target::Layout {
            program: &w.program,
            layout: &pad_all,
        },
        Target::Layout {
            program: &reordered.program,
            layout: &opt_layout,
        },
        Target::Layout {
            program: &reordered.program,
            layout: &pad_trace,
        },
        Target::Profile {
            program: &w.program,
            profile: &profile,
            config: Some(&config),
        },
        Target::Traces {
            program: &w.program,
            traces: &traces,
        },
        Target::Transform {
            original: &w.program,
            reordered: &reordered,
        },
        Target::TraceDiff {
            workload: &w,
            reordered: &reordered,
            insts: opts.insts,
        },
    ];
    let keep = |pass: &str| opts.passes.is_empty() || opts.passes.iter().any(|p| p == pass);
    let mut diags = Vec::new();
    for target in &targets {
        diags.extend(registry.run_filtered(target, keep));
    }
    diags.retain(|d| !opts.disabled.iter().any(|r| r == d.rule_id));
    Ok(diags)
}

// ---------------------------------------------------------------------------
// The `analyze` subcommand: static dataflow + fetch-geometry analysis.
// ---------------------------------------------------------------------------

/// The analysis catalog: selector name plus a one-line summary
/// (`analyze --list`).
const ANALYSES: &[(&str, &str)] = &[
    (
        "reach",
        "CFG reachability, plus the unreachable-block / profile-flow / trace-seed lints",
    ),
    (
        "dom",
        "per-function dominator trees (Cooper-Harvey-Kennedy)",
    ),
    (
        "live",
        "backward register liveness, plus the dead-write advisory lint",
    ),
    ("reachdef", "reaching definitions at every block boundary"),
    (
        "lvn",
        "local value numbering: redundant pure computations per block",
    ),
    (
        "ssa",
        "SSA construction (minimal phi placement) plus the well-formedness lint",
    ),
    (
        "geometry",
        "static fetch geometry and per-scheme EIR upper bounds",
    ),
];

#[derive(Clone, Copy, PartialEq, Eq, Debug)]
enum LayoutKind {
    Natural,
    PadAll,
    Reordered,
    PadTrace,
}

impl LayoutKind {
    fn parse(s: &str) -> Option<Self> {
        match s {
            "natural" => Some(Self::Natural),
            "pad-all" => Some(Self::PadAll),
            "reordered" => Some(Self::Reordered),
            "pad-trace" => Some(Self::PadTrace),
            _ => None,
        }
    }

    fn name(self) -> &'static str {
        match self {
            Self::Natural => "natural",
            Self::PadAll => "pad-all",
            Self::Reordered => "reordered",
            Self::PadTrace => "pad-trace",
        }
    }

    fn needs_reorder(self) -> bool {
        matches!(self, Self::Reordered | Self::PadTrace)
    }
}

struct AnalyzeOptions {
    benchmarks: Vec<String>,
    common: CommonFlags,
    layout: LayoutKind,
    analyses: Vec<String>,
    measured: bool,
}

impl AnalyzeOptions {
    fn wants(&self, analysis: &str) -> bool {
        self.analyses.iter().any(|a| a == analysis)
    }
}

fn analyze_usage() -> &'static str {
    "usage: fetchmech-lint analyze [--machine p14|p18|p112] \
     [--layout natural|pad-all|reordered|pad-trace] [--analysis NAME]... \
     [--measured] [--insts N] [--threads N] [--disable RULE]... [--json] \
     [--list] [BENCHMARK...]"
}

fn list_analyses() {
    for (name, summary) in ANALYSES {
        println!("{name}: {summary}");
    }
}

fn parse_analyze_args(args: &[String]) -> Result<Option<AnalyzeOptions>, String> {
    let mut opts = AnalyzeOptions {
        benchmarks: Vec::new(),
        common: CommonFlags::new(),
        layout: LayoutKind::Natural,
        analyses: Vec::new(),
        measured: false,
    };
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        if opts.common.parse(arg, &mut it)? {
            continue;
        }
        match arg.as_str() {
            "--measured" => opts.measured = true,
            "--list" => {
                list_analyses();
                return Ok(None);
            }
            "--layout" => {
                let kind = it.next().ok_or("--layout needs a layout kind")?;
                opts.layout =
                    LayoutKind::parse(kind).ok_or_else(|| format!("unknown layout kind {kind}"))?;
            }
            "--analysis" => {
                let name = it.next().ok_or("--analysis needs an analysis name")?;
                if !ANALYSES.iter().any(|(a, _)| a == name) {
                    return Err(format!("unknown analysis {name} (see analyze --list)"));
                }
                opts.analyses.push(name.clone());
            }
            "--help" | "-h" => {
                println!("{}", analyze_usage());
                return Ok(None);
            }
            other if other.starts_with('-') => {
                return Err(format!("unknown option {other}"));
            }
            name => opts.benchmarks.push(name.to_string()),
        }
    }
    if opts.analyses.is_empty() {
        opts.analyses = ANALYSES.iter().map(|(a, _)| (*a).to_string()).collect();
    }
    if opts.benchmarks.is_empty() {
        opts.benchmarks = default_suite();
    }
    Ok(Some(opts))
}

struct AnalyzeReport {
    human: String,
    json: Value,
    diags: Vec<Diagnostic>,
}

#[allow(clippy::too_many_lines)] // one linear section per analysis selector
fn analyze_benchmark(name: &str, opts: &AnalyzeOptions) -> Result<AnalyzeReport, String> {
    let w = suite::benchmark(name).ok_or_else(|| format!("unknown benchmark {name}"))?;
    let block_bytes = opts.common.machine.block_bytes;
    let config = TraceSelectConfig::default();
    // A profile feeds both the reordered layout variants and the
    // profile-flow / trace-seed lints under `reach`.
    let profile = (opts.wants("reach") || opts.layout.needs_reorder())
        .then(|| Profile::collect(&w, &InputId::PROFILE, opts.common.insts));
    let reordered = opts
        .layout
        .needs_reorder()
        .then(|| reorder(&w.program, profile.as_ref().expect("profile"), &config));
    let program = reordered.as_ref().map_or(&w.program, |r| &r.program);
    let layout = match opts.layout {
        LayoutKind::Natural => Layout::natural(program, LayoutOptions::new(block_bytes)),
        LayoutKind::PadAll => layout_pad_all(program, block_bytes),
        LayoutKind::Reordered => reordered.as_ref().expect("reordered").layout(block_bytes),
        LayoutKind::PadTrace => reordered
            .as_ref()
            .expect("reordered")
            .layout_pad_trace(block_bytes),
    }
    .map_err(|e| format!("{name}: {} layout failed: {e}", opts.layout.name()))?;

    let mut human = format!(
        "{name} [{}, {}]:\n",
        opts.common.machine.name,
        opts.layout.name()
    );
    let mut fields: Vec<(&str, Value)> = vec![
        ("benchmark", Value::Str(name.to_string())),
        ("machine", Value::Str(opts.common.machine.name.to_string())),
        ("layout", Value::Str(opts.layout.name().to_string())),
    ];
    let mut sink = DiagnosticSink::new();
    let mut extra: Vec<Diagnostic> = Vec::new();
    let num_blocks = program.num_blocks();

    if opts.wants("reach") {
        let reach = dataflow::reachability(program);
        let reachable = reach.iter().filter(|&&r| r).count();
        human += &format!("  reach: {reachable}/{} blocks reachable\n", reach.len());
        fields.push((
            "reach",
            Value::object([
                ("reachable", Value::Uint(reachable as u64)),
                ("blocks", Value::Uint(reach.len() as u64)),
            ]),
        ));
        dataflow::check_unreachable(program, &mut sink);
        if let Some(profile) = &profile {
            dataflow::check_profile_reachability(program, profile, &mut sink);
            let traces = select_traces(program, profile, &config);
            dataflow::check_trace_seeds(program, &traces, &mut sink);
        }
    }

    if opts.wants("dom") {
        let view = CfgView::local(program);
        let dom = dataflow::Dominators::compute(program, &view);
        let max_depth = (0..num_blocks)
            .map(|i| dom.depth(BlockId(i as u32)))
            .max()
            .unwrap_or(0);
        let funcs = program.func_entries().len();
        human += &format!("  dom: {funcs} function(s), max dominator depth {max_depth}\n");
        fields.push((
            "dom",
            Value::object([
                ("functions", Value::Uint(funcs as u64)),
                ("max_depth", Value::Uint(max_depth as u64)),
            ]),
        ));
    }

    if opts.wants("live") {
        let view = CfgView::local(program);
        let live = dataflow::liveness(program, &view);
        let mean_live = live
            .entry
            .iter()
            .map(|m| f64::from(m.count_ones()))
            .sum::<f64>()
            / live.entry.len().max(1) as f64;
        let dead = dataflow::dead_writes(program, &view, &live);
        human += &format!(
            "  live: mean {mean_live:.1} live-in regs, {} dead write(s)\n",
            dead.len()
        );
        fields.push((
            "live",
            Value::object([
                ("mean_live_in", Value::Num(mean_live)),
                ("dead_writes", Value::Uint(dead.len() as u64)),
            ]),
        ));
        dataflow::check_dead_writes(program, &mut sink);
    }

    if opts.wants("reachdef") {
        let view = CfgView::local(program);
        let defs = dataflow::ReachingDefs::compute(program, &view);
        let mean = (0..num_blocks)
            .map(|i| defs.reaching_count(BlockId(i as u32)) as f64)
            .sum::<f64>()
            / num_blocks.max(1) as f64;
        human += &format!(
            "  reachdef: {} def site(s), mean {mean:.1} reaching per block\n",
            defs.defs.len()
        );
        fields.push((
            "reachdef",
            Value::object([
                ("def_sites", Value::Uint(defs.defs.len() as u64)),
                ("mean_reaching", Value::Num(mean)),
            ]),
        ));
    }

    if opts.wants("lvn") {
        let redundant = dataflow::redundant_computations(program);
        human += &format!("  lvn: {redundant} redundant pure computation(s)\n");
        fields.push((
            "lvn",
            Value::object([("redundant", Value::Uint(redundant as u64))]),
        ));
    }

    if opts.wants("ssa") {
        let view = CfgView::local(program);
        let dom = dataflow::Dominators::compute(program, &view);
        let form = build_ssa(program, &view, &dom);
        let phis: usize = (0..num_blocks).map(|b| form.phis[b].len()).sum();
        human += &format!("  ssa: {} value(s), {phis} phi(s)\n", form.num_values());
        fields.push((
            "ssa",
            Value::object([
                ("values", Value::Uint(form.num_values() as u64)),
                ("phis", Value::Uint(phis as u64)),
            ]),
        ));
        check_ssa(program, &view, &dom, &form, &mut sink);
    }

    if opts.wants("geometry") {
        let report = analyze_geometry(program, &layout, &opts.common.machine);
        human += &format!(
            "  geometry: {} laid block(s), {} cache-line straddle(s)\n",
            report.blocks.len(),
            report.total_straddles()
        );
        let mut schemes = Vec::new();
        for sg in &report.schemes {
            human += &format!(
                "    {:<12} bound {:.2}  entry-packet {:.2}  taken-breaks {}  align-breaks {}\n",
                sg.scheme.name(),
                sg.eir_bound,
                sg.mean_entry_packet,
                sg.taken_breaks,
                sg.align_breaks
            );
            schemes.push(Value::object([
                ("scheme", Value::Str(sg.scheme.name().to_string())),
                ("eir_bound", Value::Num(sg.eir_bound)),
                ("mean_entry_packet", Value::Num(sg.mean_entry_packet)),
                ("taken_breaks", Value::Uint(sg.taken_breaks)),
                ("align_breaks", Value::Uint(sg.align_breaks)),
            ]));
        }
        fields.push((
            "geometry",
            Value::object([
                ("straddles", Value::Uint(report.total_straddles())),
                ("schemes", Value::Array(schemes)),
            ]),
        ));

        if opts.measured {
            // Execute the workload against this layout and check every
            // measured EIR against its static upper bound.
            let exec_w;
            let exec = if let Some(r) = &reordered {
                exec_w = Workload {
                    spec: w.spec.clone(),
                    program: r.program.clone(),
                    behaviors: w.behaviors.clone(),
                };
                &exec_w
            } else {
                &w
            };
            let trace: Arc<[DynInst]> = exec
                .executor(&layout, InputId::TEST, opts.common.insts)
                .collect::<Vec<_>>()
                .into();
            let mut eirs = Vec::new();
            let mut measured = Vec::new();
            for scheme in SchemeKind::ALL {
                let (r, d) =
                    fetchmech::sanitize::measure_eir_checked(&opts.common.machine, scheme, &trace);
                extra.extend(d);
                human += &format!(
                    "    measured {:<12} EIR {:.3} (bound {:.3})\n",
                    scheme.name(),
                    r.eir(),
                    report.scheme(scheme).eir_bound
                );
                measured.push(Value::object([
                    ("scheme", Value::Str(scheme.name().to_string())),
                    ("eir", Value::Num(r.eir())),
                    ("eir_bound", Value::Num(report.scheme(scheme).eir_bound)),
                ]));
                eirs.push(r);
            }
            extra.extend(fetchmech::sanitize::verify_static_bound(
                &opts.common.machine,
                name,
                program,
                &layout,
                &eirs,
            ));
            fields.push(("measured", Value::Array(measured)));
        }
    }

    let mut diags = sink.into_diagnostics();
    diags.extend(extra);
    diags.retain(|d| !opts.common.disabled.iter().any(|r| r == d.rule_id));
    fields.push(("diagnostics", diagnostics_value(&diags)));
    Ok(AnalyzeReport {
        human,
        json: Value::object(fields),
        diags,
    })
}

/// Shared tail of the report-producing subcommands (`analyze`, `opt`,
/// `frontend`): print or collect each report, emit the JSON array, fold
/// failures and error-severity findings into the exit status.
fn report_main(results: Vec<Result<AnalyzeReport, String>>, json: bool) -> ExitCode {
    let mut objects = Vec::new();
    let mut failed = false;
    let mut any_error = false;
    for result in results {
        match result {
            Ok(report) => {
                any_error |= fetchmech_analysis::has_errors(&report.diags);
                if json {
                    objects.push(report.json);
                } else {
                    print!("{}", report.human);
                    if !report.diags.is_empty() {
                        print!("{}", report_human(&report.diags));
                    }
                }
            }
            Err(e) => {
                eprintln!("fetchmech-lint: {e}");
                failed = true;
            }
        }
    }
    if json {
        println!("{}", Value::Array(objects).pretty());
    }
    if failed || any_error {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}

fn analyze_main(args: &[String]) -> ExitCode {
    let opts = match parse_analyze_args(args) {
        Ok(Some(opts)) => opts,
        Ok(None) => return ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("fetchmech-lint: {e}");
            eprintln!("{}", analyze_usage());
            return ExitCode::from(2);
        }
    };
    for rule in &opts.common.disabled {
        if !rule_id_known(rule) {
            eprintln!("fetchmech-lint: unknown rule {rule} (see --list / sanitize --list)");
            return ExitCode::from(2);
        }
    }
    // Benchmarks are independent: fan out, then report in suite order.
    let runner = Runner::from_flag_or_env(opts.common.threads);
    let results = runner.run(&opts.benchmarks, |name| analyze_benchmark(name, &opts));
    report_main(results, opts.common.json)
}

// ---------------------------------------------------------------------------
// The `opt` subcommand: the SSA-era pass pipeline under translation
// validation, with the static EIR-delta report.
// ---------------------------------------------------------------------------

/// Every rule id any subcommand can emit: the registry passes (which
/// include the opt-verify rules) plus the cycle sanitizer catalog.
fn rule_id_known(rule: &str) -> bool {
    let registry = Registry::with_default_passes();
    registry.passes().iter().any(|p| p.rules().contains(&rule))
        || RULES.iter().any(|(r, _)| *r == rule)
}

/// The pass catalog for `opt --list`.
const OPT_PASSES: &[(PassKind, &str)] = &[
    (
        PassKind::Lvn,
        "local value numbering: rewrite redundant pure computations to copies",
    ),
    (
        PassKind::Dce,
        "dead-code elimination: remove writes no path reads (SSA value liveness)",
    ),
    (
        PassKind::Superblock,
        "superblock formation: tail-duplicate side entrances out of hot traces",
    ),
    (
        PassKind::Straighten,
        "branch straightening: invert branches so hot successors fall through",
    ),
];

struct OptOptions {
    benchmarks: Vec<String>,
    common: CommonFlags,
    passes: Vec<PassKind>,
    verify: bool,
}

fn opt_usage() -> &'static str {
    "usage: fetchmech-lint opt [--passes lvn,dce,superblock,straighten] \
     [--machine p14|p18|p112] [--verify] [--insts N] [--threads N] \
     [--disable RULE]... [--json] [--list] [--self-test] [BENCHMARK...]"
}

fn list_opt() {
    println!("passes (applied in the order given to --passes):");
    for (kind, summary) in OPT_PASSES {
        println!("  {}: {summary}", kind.name());
    }
    println!("verification rules (--verify):");
    for rule in OPT_RULES {
        println!("  {rule}");
    }
    println!(
        "  {} (residual dead writes after dce, promoted to error)",
        fetchmech_analysis::dataflow::RULE_DEAD_WRITE
    );
}

fn parse_opt_args(args: &[String]) -> Result<Option<OptOptions>, String> {
    let mut opts = OptOptions {
        benchmarks: Vec::new(),
        common: CommonFlags::new(),
        passes: PassKind::ALL.to_vec(),
        verify: false,
    };
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        if opts.common.parse(arg, &mut it)? {
            continue;
        }
        match arg.as_str() {
            "--verify" => opts.verify = true,
            "--list" => {
                list_opt();
                return Ok(None);
            }
            "--passes" => {
                let list = it.next().ok_or("--passes needs a comma-separated list")?;
                opts.passes = list
                    .split(',')
                    .filter(|s| !s.is_empty())
                    .map(|s| {
                        PassKind::parse(s)
                            .ok_or_else(|| format!("unknown pass {s} (see opt --list)"))
                    })
                    .collect::<Result<_, _>>()?;
            }
            "--help" | "-h" => {
                println!("{}", opt_usage());
                return Ok(None);
            }
            other if other.starts_with('-') => {
                return Err(format!("unknown option {other}"));
            }
            name => opts.benchmarks.push(name.to_string()),
        }
    }
    if opts.benchmarks.is_empty() {
        opts.benchmarks = default_suite();
    }
    Ok(Some(opts))
}

/// One line per application summarizing what the pass did.
fn pass_summaries(optimized: &Optimized) -> Vec<(String, Value)> {
    optimized
        .applications
        .iter()
        .map(|app| {
            let (human, count) = match &app.edit {
                PassEdit::Lvn { rewrites } => {
                    (format!("{} rewrite(s)", rewrites.len()), rewrites.len())
                }
                PassEdit::Dce { removed, rounds } => (
                    format!("{} removal(s) in {rounds} round(s)", removed.len()),
                    removed.len(),
                ),
                PassEdit::Superblock { duplicated, formed } => (
                    format!("{formed} superblock(s), {} duplicate(s)", duplicated.len()),
                    duplicated.len(),
                ),
                PassEdit::Straighten { inverted } => {
                    (format!("{inverted} inversion(s)"), *inverted)
                }
            };
            (
                format!("{}: {human}", app.pass),
                Value::object([
                    ("pass", Value::Str(app.pass.to_string())),
                    ("edits", Value::Uint(count as u64)),
                ]),
            )
        })
        .collect()
}

fn opt_benchmark(name: &str, opts: &OptOptions) -> Result<AnalyzeReport, String> {
    let w = suite::benchmark(name).ok_or_else(|| format!("unknown benchmark {name}"))?;
    let profile = Profile::collect(&w, &InputId::PROFILE, opts.common.insts);
    let optimized = optimize(
        &w.program,
        &profile,
        &opts.passes,
        &OptimizeConfig::default(),
    );
    // Re-profile the *optimized* program (branch behaviors aliased back to
    // their origins) so duplicated paths get their true original/copy flow
    // split instead of the projected double-count.
    let w_after = Workload {
        spec: w.spec.clone(),
        program: optimized.program.clone(),
        behaviors: w.behaviors.with_origin(optimized.branch_origin.clone()),
    };
    let measured = Profile::collect(&w_after, &InputId::PROFILE, opts.common.insts);
    let delta = eir_delta(
        &w.program,
        &profile,
        &optimized,
        Some(&measured),
        &opts.common.machine,
    )
    .map_err(|e| format!("{name}: pipeline layout failed: {e}"))?;

    let mut human = format!(
        "{name} [{}]: {} -> {} block(s)\n",
        opts.common.machine.name,
        w.program.num_blocks(),
        optimized.program.num_blocks()
    );
    let mut fields: Vec<(&str, Value)> = vec![
        ("benchmark", Value::Str(name.to_string())),
        ("machine", Value::Str(opts.common.machine.name.to_string())),
        (
            "passes",
            Value::Array(
                opts.passes
                    .iter()
                    .map(|p| Value::Str(p.name().to_string()))
                    .collect(),
            ),
        ),
        ("blocks_before", Value::Uint(w.program.num_blocks() as u64)),
        (
            "blocks_after",
            Value::Uint(optimized.program.num_blocks() as u64),
        ),
    ];
    let mut summaries = Vec::new();
    for (line, json) in pass_summaries(&optimized) {
        human += &format!("  {line}\n");
        summaries.push(json);
    }
    fields.push(("applications", Value::Array(summaries)));

    let mut schemes = Vec::new();
    for ((before, after), weighted) in delta
        .before
        .schemes
        .iter()
        .zip(&delta.after.schemes)
        .zip(&delta.weighted)
    {
        human += &format!(
            "    {:<12} predicted {:.2} -> {:.2} ({:+.2})  bound {:.2} -> {:.2}  \
             taken-breaks {} -> {}\n",
            before.scheme.name(),
            weighted.before,
            weighted.after,
            weighted.after - weighted.before,
            before.eir_bound,
            after.eir_bound,
            before.taken_breaks,
            after.taken_breaks,
        );
        schemes.push(Value::object([
            ("scheme", Value::Str(before.scheme.name().to_string())),
            ("predicted_before", Value::Num(weighted.before)),
            ("predicted_after", Value::Num(weighted.after)),
            (
                "predicted_delta",
                Value::Num(weighted.after - weighted.before),
            ),
            ("bound_before", Value::Num(before.eir_bound)),
            ("bound_after", Value::Num(after.eir_bound)),
            ("entry_packet_before", Value::Num(before.mean_entry_packet)),
            ("entry_packet_after", Value::Num(after.mean_entry_packet)),
            ("taken_breaks_before", Value::Uint(before.taken_breaks)),
            ("taken_breaks_after", Value::Uint(after.taken_breaks)),
        ]));
    }
    fields.push(("eir_bounds", Value::Array(schemes)));

    let mut diags = Vec::new();
    if opts.verify {
        diags = verify_optimized(&w, &profile, &optimized, opts.common.insts);
        diags.retain(|d| !opts.common.disabled.iter().any(|r| r == d.rule_id));
    }
    fields.push(("diagnostics", diagnostics_value(&diags)));
    Ok(AnalyzeReport {
        human,
        json: Value::object(fields),
        diags,
    })
}

/// Corrupts a real pipeline result in-process and verifies the validator
/// still rejects it: findings are EXPECTED and exit status 1 proves the
/// gate is live (mirrors `sanitize --self-test`).
fn opt_self_test() -> ExitCode {
    let w = suite::benchmark("compress").expect("compress is a suite benchmark");
    let profile = Profile::collect(&w, &InputId::PROFILE, 20_000);
    let mut optimized = optimize(
        &w.program,
        &profile,
        &PassKind::ALL,
        &OptimizeConfig::default(),
    );
    let app = optimized
        .applications
        .first_mut()
        .expect("the full pipeline records applications");
    // Smuggle an undeclared body edit into the first application's output.
    let mut edit = app.after.edit();
    edit.insts_mut(BlockId(0)).push(Inst::nop());
    app.after = edit.finish().expect("a nop keeps the program valid");
    let diags = verify_optimized(&w, &profile, &optimized, 4_000);
    print!("{}", report_human(&diags));
    if fetchmech_analysis::has_errors(&diags) {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}

fn opt_main(args: &[String]) -> ExitCode {
    if args.iter().any(|a| a == "--self-test") {
        return opt_self_test();
    }
    let opts = match parse_opt_args(args) {
        Ok(Some(opts)) => opts,
        Ok(None) => return ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("fetchmech-lint: {e}");
            eprintln!("{}", opt_usage());
            return ExitCode::from(2);
        }
    };
    for rule in &opts.common.disabled {
        if !rule_id_known(rule) {
            eprintln!("fetchmech-lint: unknown rule {rule} (see opt --list)");
            return ExitCode::from(2);
        }
    }
    let runner = Runner::from_flag_or_env(opts.common.threads);
    let results = runner.run(&opts.benchmarks, |name| opt_benchmark(name, &opts));
    report_main(results, opts.common.json)
}

// ---------------------------------------------------------------------------
// The `sanitize` subcommand: drive the simulator under the cycle sanitizer.
// ---------------------------------------------------------------------------

struct SanOptions {
    benchmarks: Vec<String>,
    common: CommonFlags,
}

impl SanOptions {
    fn config(&self) -> SanitizeConfig {
        let mut cfg = SanitizeConfig::new();
        for rule in &self.common.disabled {
            cfg.disable(rule.clone());
        }
        cfg
    }

    fn keeps(&self, rule: &str) -> bool {
        !self.common.disabled.iter().any(|d| d == rule)
    }
}

fn sanitize_usage() -> &'static str {
    "usage: fetchmech-lint sanitize [--machine p14|p18|p112] [--insts N] \
     [--short] [--threads N] [--disable RULE]... [--json] [--list] [--self-test] \
     [BENCHMARK...]"
}

fn list_sanitize_rules() {
    for (rule, summary) in RULES {
        println!("{rule}: {summary}");
    }
}

fn parse_sanitize_args(args: &[String]) -> Result<Option<SanOptions>, String> {
    let mut opts = SanOptions {
        benchmarks: Vec::new(),
        common: CommonFlags::new(),
    };
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        if opts.common.parse(arg, &mut it)? {
            continue;
        }
        match arg.as_str() {
            "--short" => opts.common.insts = 4_000,
            "--list" => {
                list_sanitize_rules();
                return Ok(None);
            }
            "--help" | "-h" => {
                println!("{}", sanitize_usage());
                return Ok(None);
            }
            other if other.starts_with('-') => {
                return Err(format!("unknown option {other}"));
            }
            name => opts.benchmarks.push(name.to_string()),
        }
    }
    if opts.benchmarks.is_empty() {
        opts.benchmarks = default_suite();
    }
    Ok(Some(opts))
}

fn sanitize_benchmark(name: &str, opts: &SanOptions) -> Result<Vec<Diagnostic>, String> {
    let machine = &opts.common.machine;
    let w = suite::benchmark(name).ok_or_else(|| format!("unknown benchmark {name}"))?;
    let layout = Layout::natural(&w.program, LayoutOptions::new(machine.block_bytes))
        .map_err(|e| format!("{name}: natural layout failed: {e}"))?;
    let trace: Arc<[DynInst]> = w
        .executor(&layout, InputId::TEST, opts.common.insts)
        .collect::<Vec<_>>()
        .into();
    let mut diags = Vec::new();
    // Full pipeline under the sanitizer, once per scheme.
    for scheme in SchemeKind::ALL {
        let (_result, d) =
            fetchmech::sanitize::simulate_checked_with(machine, scheme, &trace, opts.config());
        diags.extend(d);
    }
    // Fetch-only differential harness + cross-scheme dominance, sharing the
    // same zero-copy trace.
    let (eirs, d) = fetchmech::sanitize::check_dominance(machine, name, &trace);
    diags.extend(d.into_iter().filter(|d| opts.keeps(d.rule_id)));
    // Static fetch-geometry upper bound: the measured EIRs must stay under
    // what the program + layout + machine alone permit.
    let d = fetchmech::sanitize::verify_static_bound(machine, name, &w.program, &layout, &eirs);
    diags.extend(d.into_iter().filter(|d| opts.keeps(d.rule_id)));
    Ok(diags)
}

fn sanitize_main(args: &[String]) -> ExitCode {
    if args.iter().any(|a| a == "--self-test") {
        // Corrupted-by-construction event streams: findings mean the engine
        // still catches what it claims to, and the exit status reports them
        // like any other run (nonzero — the CLI test asserts exactly that).
        let diags = self_test();
        print!("{}", report_human(&diags));
        return if fetchmech_analysis::has_errors(&diags) {
            ExitCode::FAILURE
        } else {
            ExitCode::SUCCESS
        };
    }
    let opts = match parse_sanitize_args(args) {
        Ok(Some(opts)) => opts,
        Ok(None) => return ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("fetchmech-lint: {e}");
            eprintln!("{}", sanitize_usage());
            return ExitCode::from(2);
        }
    };
    let known: Vec<&str> = RULES.iter().map(|(rule, _)| *rule).collect();
    for rule in &opts.common.disabled {
        if !known.contains(&rule.as_str()) {
            eprintln!("fetchmech-lint: unknown sanitizer rule {rule} (see sanitize --list)");
            return ExitCode::from(2);
        }
    }
    // Benchmarks are independent: fan out on the worker pool, then report
    // in suite order so output (and the JSON array) stays deterministic.
    let runner = Runner::from_flag_or_env(opts.common.threads);
    let results = runner.run(&opts.benchmarks, |name| sanitize_benchmark(name, &opts));
    let mut all = Vec::new();
    let mut failed = false;
    for (name, result) in opts.benchmarks.iter().zip(results) {
        match result {
            Ok(diags) => {
                if !opts.common.json {
                    let errors = diags
                        .iter()
                        .filter(|d| d.severity == Severity::Error)
                        .count();
                    println!("{name}: {} finding(s), {errors} error(s)", diags.len());
                    if !diags.is_empty() {
                        print!("{}", report_human(&diags));
                    }
                }
                all.extend(diags);
            }
            Err(e) => {
                eprintln!("fetchmech-lint: {e}");
                failed = true;
            }
        }
    }
    if opts.common.json {
        println!("{}", diagnostics_json(&all));
    }
    if failed || all.iter().any(|d| d.severity == Severity::Error) {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}

// ---------------------------------------------------------------------------
// The `frontend` subcommand: lint external (Bril / WAT) programs.
// ---------------------------------------------------------------------------

struct FrontendOptions {
    files: Vec<String>,
    common: CommonFlags,
    dump: bool,
    verify: bool,
}

fn frontend_usage() -> &'static str {
    "usage: fetchmech-lint frontend [--machine p14|p18|p112] [--insts N] \
     [--threads N] [--disable RULE]... [--json] [--dump] [--verify] [--list] \
     FILE..."
}

fn list_frontend() {
    println!("formats (picked by file extension):");
    println!("  bril: Bril-style JSON CFG (.bril.json / .json)");
    println!("  wat: flat WebAssembly text subset (.wat)");
    println!("behaviour annotations (Bril `br` fields / WAT `;; @...` comments):");
    println!("  p=P            Bernoulli taken probability in [0, 1]");
    println!("  loop=M         geometric loop with mean M trips");
    println!("  fixed=N        exactly N trips per loop visit");
    println!("  pattern=BITS:E periodic bit pattern with noise E");
}

fn parse_frontend_args(args: &[String]) -> Result<Option<FrontendOptions>, String> {
    let mut opts = FrontendOptions {
        files: Vec::new(),
        common: CommonFlags::new(),
        dump: false,
        verify: false,
    };
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        if opts.common.parse(arg, &mut it)? {
            continue;
        }
        match arg.as_str() {
            "--dump" => opts.dump = true,
            "--verify" => opts.verify = true,
            "--list" => {
                list_frontend();
                return Ok(None);
            }
            "--help" | "-h" => {
                println!("{}", frontend_usage());
                return Ok(None);
            }
            other if other.starts_with('-') => {
                return Err(format!("unknown option {other}"));
            }
            name => opts.files.push(name.to_string()),
        }
    }
    if opts.files.is_empty() {
        return Err("frontend needs at least one program file".to_owned());
    }
    for file in &opts.files {
        if Format::for_path(file).is_none() {
            return Err(format!(
                "cannot infer a format for {file} (expected .bril.json, .json, or .wat)"
            ));
        }
    }
    Ok(Some(opts))
}

/// FNV-1a over a program id — the same seed derivation the experiment
/// registry uses, so CLI traces match serve-side traces for the same id.
fn fnv64(name: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in name.bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

fn frontend_file(path: &str, opts: &FrontendOptions) -> Result<AnalyzeReport, String> {
    let format = Format::for_path(path).expect("extension validated at parse time");
    let src = std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
    let lowered = fetchmech_frontend::parse(format, &src).map_err(|e| format!("{path}: {e}"))?;
    let machine = &opts.common.machine;
    let id = format!("prog-{:016x}", lowered.fingerprint());
    let name: &'static str = Box::leak(id.clone().into_boxed_str());
    let w = Workload {
        spec: WorkloadSpec::external(name, fnv64(name)),
        program: lowered.program.clone(),
        behaviors: lowered.behaviors.clone(),
    };
    let layout = Layout::natural(&w.program, LayoutOptions::new(machine.block_bytes))
        .map_err(|e| format!("{path}: natural layout failed: {e}"))?;
    let profile = Profile::collect(&w, &InputId::PROFILE, opts.common.insts);

    let mut human = format!(
        "{path} [{}, {}]: {id}, {} func(s), {} block(s), {} branch(es)\n",
        format.name(),
        machine.name,
        w.program.num_funcs(),
        w.program.num_blocks(),
        w.program.num_branches()
    );
    let mut fields: Vec<(&str, Value)> = vec![
        ("file", Value::Str(path.to_string())),
        ("format", Value::Str(format.name().to_string())),
        ("id", Value::Str(id.clone())),
        ("machine", Value::Str(machine.name.to_string())),
        ("funcs", Value::Uint(w.program.num_funcs() as u64)),
        ("blocks", Value::Uint(w.program.num_blocks() as u64)),
        ("branches", Value::Uint(w.program.num_branches() as u64)),
    ];

    // Default lint rules over the lowered CFG, its natural layout, and a
    // collected profile (flow conservation included).
    let registry = Registry::with_default_passes();
    let mut diags = Vec::new();
    let targets = [
        Target::Program(&w.program),
        Target::Layout {
            program: &w.program,
            layout: &layout,
        },
        Target::Profile {
            program: &w.program,
            profile: &profile,
            config: None,
        },
    ];
    for target in &targets {
        diags.extend(registry.run_filtered(target, |_| true));
    }

    if opts.verify {
        // Full opt pipeline under translation validation, then one
        // simulation per fetch scheme over the lowered program.
        let optimized = optimize(
            &w.program,
            &profile,
            &PassKind::ALL,
            &OptimizeConfig::default(),
        );
        diags.extend(verify_optimized(
            &w,
            &profile,
            &optimized,
            opts.common.insts,
        ));
        human += &format!(
            "  opt: {} -> {} block(s), translation-validated\n",
            w.program.num_blocks(),
            optimized.program.num_blocks()
        );
        let mut schemes = Vec::new();
        for scheme in SchemeKind::ALL {
            let trace: Vec<DynInst> = w
                .executor(&layout, InputId::TEST, opts.common.insts)
                .collect();
            let r = simulate(machine, scheme, trace);
            if r.retired == 0 {
                return Err(format!("{path}: {} retired no instructions", scheme.name()));
            }
            human += &format!("    {:<12} EIR {:.3}\n", scheme.name(), r.eir());
            schemes.push(Value::object([
                ("scheme", Value::Str(scheme.name().to_string())),
                ("eir", Value::Num(r.eir())),
            ]));
        }
        fields.push(("schemes", Value::Array(schemes)));
    }

    if opts.dump {
        let text = fetchmech_frontend::dump(&lowered);
        human += &text;
        fields.push(("dump", Value::Str(text)));
    }

    diags.retain(|d| !opts.common.disabled.iter().any(|r| r == d.rule_id));
    fields.push(("diagnostics", diagnostics_value(&diags)));
    Ok(AnalyzeReport {
        human,
        json: Value::object(fields),
        diags,
    })
}

fn frontend_main(args: &[String]) -> ExitCode {
    let opts = match parse_frontend_args(args) {
        Ok(Some(opts)) => opts,
        Ok(None) => return ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("fetchmech-lint: {e}");
            eprintln!("{}", frontend_usage());
            return ExitCode::from(2);
        }
    };
    for rule in &opts.common.disabled {
        if !rule_id_known(rule) {
            eprintln!("fetchmech-lint: unknown rule {rule} (see --list)");
            return ExitCode::from(2);
        }
    }
    // Files are independent: fan out like the benchmark subcommands do.
    let runner = Runner::from_flag_or_env(opts.common.threads);
    let results = runner.run(&opts.files, |path| frontend_file(path, &opts));
    report_main(results, opts.common.json)
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.first().map(String::as_str) == Some("sanitize") {
        return sanitize_main(&args[1..]);
    }
    if args.first().map(String::as_str) == Some("analyze") {
        return analyze_main(&args[1..]);
    }
    if args.first().map(String::as_str) == Some("opt") {
        return opt_main(&args[1..]);
    }
    if args.first().map(String::as_str) == Some("frontend") {
        return frontend_main(&args[1..]);
    }
    let opts = match parse_args(&args) {
        Ok(Some(opts)) => opts,
        Ok(None) => return ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("fetchmech-lint: {e}");
            eprintln!("{}", usage());
            return ExitCode::from(2);
        }
    };

    let registry = Registry::with_default_passes();
    for name in &opts.passes {
        if !registry.passes().iter().any(|p| p.name() == name) {
            eprintln!("fetchmech-lint: unknown pass {name} (see --list-passes)");
            return ExitCode::from(2);
        }
    }
    for rule in &opts.disabled {
        let known = registry
            .passes()
            .iter()
            .any(|p| p.rules().iter().any(|r| r == rule));
        if !known {
            eprintln!("fetchmech-lint: unknown rule {rule} (see --list)");
            return ExitCode::from(2);
        }
    }
    let mut all = Vec::new();
    let mut failed = false;
    for name in &opts.benchmarks {
        match lint_benchmark(name, &opts, &registry) {
            Ok(diags) => {
                if !opts.json {
                    let errors = diags
                        .iter()
                        .filter(|d| d.severity == Severity::Error)
                        .count();
                    println!("{name}: {} finding(s), {errors} error(s)", diags.len());
                    if !diags.is_empty() {
                        print!("{}", report_human(&diags));
                    }
                }
                all.extend(diags);
            }
            Err(e) => {
                eprintln!("fetchmech-lint: {e}");
                failed = true;
            }
        }
    }
    if opts.json {
        println!("{}", diagnostics_json(&all));
    }
    let bad = all.iter().any(|d| {
        d.severity == Severity::Error || (opts.deny_warnings && d.severity == Severity::Warning)
    });
    if failed || bad {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}
