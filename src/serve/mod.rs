//! `fetchmech-serve`: a concurrent experiment service over the simulator.
//!
//! The service answers HTTP/1.1 + JSON requests from a process-wide shared
//! [`Lab`] (so repeated work hits the memoized trace/layout/profile caches)
//! and a bounded job queue of unit simulations layered on
//! [`fetchmech::runner::Runner`]. The pieces:
//!
//! * [`http`] — a minimal `std::net` HTTP layer (one request per
//!   connection, size-limited, `Connection: close`).
//! * [`engine`] — the coalescing job engine: identical in-flight requests
//!   share one computation; deadlines cancel queued work cooperatively.
//! * [`api`] — request validation and response rendering for
//!   `POST /v1/simulate`, `POST /v1/sweep`, and `POST /v1/programs`
//!   (frontend program uploads, registered under content-hash ids).
//! * [`metrics`] — counters and latency histograms behind `GET /metrics`.
//!
//! Admission control is explicit: when the bounded queue is full the
//! service sheds load with a structured `429` instead of queueing
//! unboundedly, and [`Server::shutdown`] drains in-flight work before
//! returning so a SIGTERM never truncates a running experiment.

pub mod api;
pub mod engine;
pub mod http;
pub mod metrics;

use std::io::ErrorKind;
use std::net::{TcpListener, TcpStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread;
use std::time::{Duration, Instant};

use fetchmech::experiments::{ExpConfig, Lab};
use fetchmech::json::Value;
use fetchmech::runner::{JobQueue, Runner};

use crate::store::{FaultPlan, NoFault, Store};

use api::Limits;
use engine::{EngineShared, Outcome, Shed, SimJob, WaitResult};
use http::{ReadError, Request, Response};
use metrics::Metrics;

/// Everything configurable about the service.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Bind address; port `0` picks an ephemeral port (reported by
    /// [`Server::addr`]).
    pub addr: String,
    /// Worker-pool size; `None` defers to `FETCHMECH_THREADS` / available
    /// parallelism, exactly like the CLI tools.
    pub threads: Option<usize>,
    /// Bounded job-queue capacity; submissions beyond it are shed with 429.
    pub queue_capacity: usize,
    /// Most simultaneously-served connections; beyond it, connections get an
    /// immediate 503.
    pub max_connections: usize,
    /// Default per-request deadline (ms) when the body omits `deadline_ms`.
    pub default_deadline_ms: u64,
    /// Upper cap on any requested deadline (ms).
    pub max_deadline_ms: u64,
    /// Default trace length when the body omits `insts`.
    pub default_insts: u64,
    /// Upper cap on any requested trace length.
    pub max_insts: u64,
    /// Lab sizing (trace lengths used by profiling/reordering).
    pub exp: ExpConfig,
    /// How long [`Server::shutdown`] waits for open connections to finish
    /// before abandoning them.
    pub drain_timeout: Duration,
    /// When set, results persist to this append-only store log and survive
    /// restarts; `None` keeps the service purely in-memory.
    pub store_path: Option<PathBuf>,
    /// Bounded backlog of the store's write-behind channel; overflow drops
    /// persists (never blocks the request path).
    pub store_queue: usize,
    /// Deterministic fault schedule (store I/O + worker panics); `None` in
    /// production.
    pub fault: Option<FaultPlan>,
    /// Per-connection socket read timeout, so a slow-loris client cannot
    /// pin a connection thread.
    pub read_timeout: Duration,
    /// Per-connection socket write timeout, so a half-closed or unread
    /// client cannot pin a connection thread.
    pub write_timeout: Duration,
}

impl Default for ServeConfig {
    fn default() -> Self {
        Self {
            addr: "127.0.0.1:0".to_string(),
            threads: None,
            queue_capacity: 128,
            max_connections: 128,
            default_deadline_ms: 30_000,
            max_deadline_ms: 600_000,
            default_insts: 20_000,
            max_insts: 500_000,
            exp: ExpConfig::full(),
            drain_timeout: Duration::from_secs(30),
            store_path: None,
            store_queue: 256,
            fault: None,
            read_timeout: Duration::from_secs(10),
            write_timeout: Duration::from_secs(10),
        }
    }
}

/// Counts live connection-handler threads so shutdown can drain them.
#[derive(Debug)]
struct ConnTracker {
    max: usize,
    live: Mutex<usize>,
    idle: Condvar,
}

impl ConnTracker {
    fn new(max: usize) -> Self {
        Self {
            max: max.max(1),
            live: Mutex::new(0),
            idle: Condvar::new(),
        }
    }

    /// Claims a connection slot; `false` when the server is saturated.
    fn try_acquire(&self) -> bool {
        let mut live = self.live.lock().expect("conn lock poisoned");
        if *live >= self.max {
            return false;
        }
        *live += 1;
        true
    }

    fn release(&self) {
        let mut live = self.live.lock().expect("conn lock poisoned");
        *live -= 1;
        if *live == 0 {
            self.idle.notify_all();
        }
    }

    /// Waits until no connections remain (or the timeout passes).
    fn drain(&self, timeout: Duration) {
        let deadline = Instant::now() + timeout;
        let mut live = self.live.lock().expect("conn lock poisoned");
        while *live > 0 {
            let now = Instant::now();
            if now >= deadline {
                return;
            }
            let (guard, _) = self
                .idle
                .wait_timeout(live, deadline - now)
                .expect("conn lock poisoned");
            live = guard;
        }
    }
}

/// A running service instance. Dropping it without calling
/// [`Server::shutdown`] stops accepting but does not wait for in-flight
/// work.
#[derive(Debug)]
pub struct Server {
    addr: std::net::SocketAddr,
    stop: Arc<AtomicBool>,
    accept_thread: Option<thread::JoinHandle<()>>,
    conns: Arc<ConnTracker>,
    queue: Arc<JobQueue<SimJob>>,
    shared: Arc<EngineShared>,
    drain_timeout: Duration,
}

/// Accept-time knobs shared by every connection.
#[derive(Debug, Clone, Copy)]
struct ConnOptions {
    limits: Limits,
    read_timeout: Duration,
    write_timeout: Duration,
    /// The store was configured but failed to open at boot: the service
    /// runs, but `/healthz` reports the persistence tier as degraded.
    store_boot_failed: bool,
}

/// Per-connection context handed to the handler threads.
#[derive(Debug)]
struct Handler {
    shared: Arc<EngineShared>,
    queue: Arc<JobQueue<SimJob>>,
    limits: Limits,
    store_boot_failed: bool,
    started: Instant,
}

impl Server {
    /// Binds, spawns the worker pool and the accept loop, and returns once
    /// the service is reachable.
    ///
    /// # Errors
    ///
    /// Returns the bind error if the address is unavailable.
    pub fn start(config: ServeConfig) -> std::io::Result<Server> {
        let listener = TcpListener::bind(&config.addr)?;
        let addr = listener.local_addr()?;
        listener.set_nonblocking(true)?;

        let runner = Runner::from_flag_or_env(config.threads);
        let queue = Arc::new(JobQueue::start(runner, config.queue_capacity));
        let metrics = Arc::new(Metrics::new());
        let lab = Arc::new(Lab::with_runner(config.exp, runner));

        // A store that cannot open must not kill the service: run without
        // persistence and surface the degradation via /healthz instead.
        let mut store_boot_failed = false;
        let store = match &config.store_path {
            None => None,
            Some(path) => {
                let fault: Arc<dyn crate::store::IoFault> = match &config.fault {
                    Some(plan) => Arc::new(*plan),
                    None => Arc::new(NoFault),
                };
                match Store::open(path.clone(), fault, config.store_queue) {
                    Ok(store) => {
                        let report = store.recovery();
                        eprintln!(
                            "fetchmech-serve: store {} recovered {} records ({} keys, {} torn bytes truncated)",
                            path.display(),
                            report.records,
                            report.keys,
                            report.truncated_bytes,
                        );
                        Some(Arc::new(store))
                    }
                    Err(e) => {
                        eprintln!(
                            "fetchmech-serve: cannot open store {} ({e}); continuing without persistence",
                            path.display(),
                        );
                        store_boot_failed = true;
                        None
                    }
                }
            }
        };
        let shared = Arc::new(EngineShared::with_store(
            lab,
            Arc::clone(&metrics),
            store,
            config.fault,
        ));
        let limits = Limits {
            default_insts: config.default_insts,
            max_insts: config.max_insts,
            default_deadline_ms: config.default_deadline_ms,
            max_deadline_ms: config.max_deadline_ms,
        };
        let options = ConnOptions {
            limits,
            read_timeout: config.read_timeout,
            write_timeout: config.write_timeout,
            store_boot_failed,
        };

        let stop = Arc::new(AtomicBool::new(false));
        let conns = Arc::new(ConnTracker::new(config.max_connections));

        let accept_stop = Arc::clone(&stop);
        let accept_conns = Arc::clone(&conns);
        let accept_shared = Arc::clone(&shared);
        let accept_queue = Arc::clone(&queue);
        let accept_thread = thread::Builder::new()
            .name("fetchmech-accept".to_string())
            .spawn(move || {
                accept_loop(
                    &listener,
                    &accept_stop,
                    &accept_conns,
                    &accept_shared,
                    &accept_queue,
                    options,
                );
            })
            .expect("failed to spawn accept thread");

        Ok(Server {
            addr,
            stop,
            accept_thread: Some(accept_thread),
            conns,
            queue,
            shared,
            drain_timeout: config.drain_timeout,
        })
    }

    /// The actual bound address (resolves ephemeral ports).
    #[must_use]
    pub fn addr(&self) -> std::net::SocketAddr {
        self.addr
    }

    /// The engine's metrics block (exposed for tests and embedding).
    #[must_use]
    pub fn metrics(&self) -> Arc<Metrics> {
        Arc::clone(&self.shared.metrics)
    }

    /// The persistent store, when one is configured (exposed for tests).
    #[must_use]
    pub fn store(&self) -> Option<Arc<crate::store::Store>> {
        self.shared.store.clone()
    }

    /// Graceful shutdown: stop accepting, wait for open connections (up to
    /// the configured drain timeout), then close the job queue, drain any
    /// queued work, and flush the store's persistence backlog.
    pub fn shutdown(mut self) {
        self.stop.store(true, Ordering::SeqCst);
        if let Some(handle) = self.accept_thread.take() {
            let _ = handle.join();
        }
        self.conns.drain(self.drain_timeout);
        self.queue.close();
        self.queue.drain();
        if let Some(store) = &self.shared.store {
            store.shutdown();
        }
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        self.stop.store(true, Ordering::SeqCst);
        if let Some(handle) = self.accept_thread.take() {
            let _ = handle.join();
        }
        self.queue.close();
    }
}

fn accept_loop(
    listener: &TcpListener,
    stop: &Arc<AtomicBool>,
    conns: &Arc<ConnTracker>,
    shared: &Arc<EngineShared>,
    queue: &Arc<JobQueue<SimJob>>,
    options: ConnOptions,
) {
    let started = Instant::now();
    while !stop.load(Ordering::SeqCst) {
        match listener.accept() {
            Ok((stream, _peer)) => {
                let _ = stream.set_read_timeout(Some(options.read_timeout));
                let _ = stream.set_write_timeout(Some(options.write_timeout));
                if !conns.try_acquire() {
                    refuse_saturated(stream, shared);
                    continue;
                }
                let handler = Handler {
                    shared: Arc::clone(shared),
                    queue: Arc::clone(queue),
                    limits: options.limits,
                    store_boot_failed: options.store_boot_failed,
                    started,
                };
                let thread_conns = Arc::clone(conns);
                let spawned = thread::Builder::new()
                    .name("fetchmech-conn".to_string())
                    .spawn(move || {
                        handler.serve_connection(stream);
                        thread_conns.release();
                    });
                if spawned.is_err() {
                    conns.release();
                }
            }
            Err(e) if e.kind() == ErrorKind::WouldBlock => {
                thread::sleep(Duration::from_millis(5));
            }
            Err(_) => thread::sleep(Duration::from_millis(5)),
        }
    }
}

/// Over the connection cap: answer 503 inline on the accept thread (cheap —
/// no simulation work) rather than silently dropping the socket.
fn refuse_saturated(mut stream: TcpStream, shared: &Arc<EngineShared>) {
    shared
        .metrics
        .resp_unavailable
        .fetch_add(1, Ordering::Relaxed);
    let resp = Response::error(503, "saturated", "connection limit reached; retry shortly")
        .with_retry_after(1);
    let _ = resp.write_to(&mut stream);
}

impl Handler {
    fn serve_connection(&self, mut stream: TcpStream) {
        let request = match http::read_request(&mut stream) {
            Ok(req) => req,
            Err(ReadError::Closed) => return,
            Err(ReadError::Io(_)) => return,
            Err(ReadError::TooLarge) => {
                self.finish(
                    &mut stream,
                    Response::error(413, "too_large", "request exceeds size limits"),
                );
                return;
            }
            Err(ReadError::Malformed(why)) => {
                self.finish(&mut stream, Response::error(400, "malformed", why));
                return;
            }
        };
        let response = self.route(&request);
        self.finish(&mut stream, response);
    }

    fn finish(&self, stream: &mut TcpStream, response: Response) {
        self.shared.metrics.record_status(response.status);
        let _ = response.write_to(stream);
    }

    fn route(&self, request: &Request) -> Response {
        let metrics = &self.shared.metrics;
        match (request.method.as_str(), request.path.as_str()) {
            ("GET", "/healthz") => {
                metrics.req_healthz.fetch_add(1, Ordering::Relaxed);
                let programs = self.shared.lab.external_names();
                Response::json(200, &api::healthz_json(self.store_state(), &programs))
            }
            ("GET", "/metrics") => {
                metrics.req_metrics.fetch_add(1, Ordering::Relaxed);
                Response::json(200, &self.metrics_json())
            }
            ("POST", "/v1/simulate") => {
                metrics.req_simulate.fetch_add(1, Ordering::Relaxed);
                let t0 = Instant::now();
                let resp = self.handle_simulate(&request.body);
                metrics.record_latency(t0.elapsed());
                resp
            }
            ("POST", "/v1/sweep") => {
                metrics.req_sweep.fetch_add(1, Ordering::Relaxed);
                let t0 = Instant::now();
                let resp = self.handle_sweep(&request.body);
                metrics.record_latency(t0.elapsed());
                resp
            }
            ("POST", "/v1/programs") => {
                metrics.req_programs.fetch_add(1, Ordering::Relaxed);
                self.handle_programs(&request.body)
            }
            ("GET" | "POST", _) => {
                metrics.req_other.fetch_add(1, Ordering::Relaxed);
                Response::error(404, "not_found", format!("no route for {}", request.path))
            }
            _ => {
                metrics.req_other.fetch_add(1, Ordering::Relaxed);
                Response::error(
                    405,
                    "method_not_allowed",
                    format!("method {}", request.method),
                )
            }
        }
    }

    /// The persistence tier's health, as reported by `/healthz`.
    fn store_state(&self) -> &'static str {
        match &self.shared.store {
            Some(store) if store.is_degraded() => "degraded",
            Some(_) => "active",
            None if self.store_boot_failed => "degraded",
            None => "disabled",
        }
    }

    fn metrics_json(&self) -> Value {
        let lab_cache = self.shared.lab.cache_stats().to_json();
        let store = match &self.shared.store {
            Some(store) => store.to_json(),
            None => Value::object([("state", Value::Str(self.store_state().to_string()))]),
        };
        self.shared.metrics.to_json(
            self.started.elapsed(),
            self.queue.depth(),
            self.queue.capacity(),
            self.queue.running(),
            self.queue.workers(),
            self.queue.panics(),
            &store,
            &lab_cache,
        )
    }

    fn internal_error(reference: &str) -> Response {
        Response::error(
            500,
            "internal",
            format!("internal error; reference {reference}"),
        )
    }

    /// `POST /v1/programs`: parse + lower an uploaded frontend program and
    /// register it in the lab under its content-hash id. Registration is
    /// idempotent — re-uploading the same program (under either format) with
    /// the same lowered form returns the same id with `registered: false`,
    /// and every simulate/sweep/store path then accepts the id as a bench
    /// name.
    fn handle_programs(&self, body: &[u8]) -> Response {
        let upload = match api::parse_program_upload(body) {
            Ok(upload) => upload,
            Err(why) => return Response::error(400, "invalid_request", why),
        };
        let lowered = match fetchmech_frontend::parse(upload.format, &upload.source) {
            Ok(lowered) => lowered,
            Err(e) => return Response::error(400, "invalid_program", e.to_string()),
        };
        let id = format!("prog-{:016x}", lowered.fingerprint());
        let stats = Value::object([
            ("funcs", Value::Uint(lowered.program.num_funcs() as u64)),
            ("blocks", Value::Uint(lowered.program.num_blocks() as u64)),
            (
                "branches",
                Value::Uint(u64::from(lowered.program.num_branches())),
            ),
        ]);
        let registered = if self.shared.lab.intern_name(&id).is_some() {
            false
        } else {
            match self
                .shared
                .lab
                .register_external(&id, lowered.program, lowered.behaviors)
            {
                Ok(_) => true,
                Err(why) => return Response::error(429, "registry_full", why).with_retry_after(1),
            }
        };
        Response::json(
            200,
            &Value::object([
                ("id", Value::Str(id)),
                ("registered", Value::Bool(registered)),
                ("stats", stats),
            ]),
        )
    }

    fn handle_simulate(&self, body: &[u8]) -> Response {
        let req = match api::parse_simulate(body, &self.limits, &self.shared.lab) {
            Ok(req) => req,
            Err(why) => return Response::error(400, "invalid_request", why),
        };
        // Durable results never touch the queue: a store hit is an index
        // lookup + one read, byte-identical to the original 200.
        if let Some(store) = &self.shared.store {
            if let Some(body) = store.lookup(&req.key.store_key()) {
                return Response::raw_json(200, body);
            }
        }
        let deadline = Instant::now() + Duration::from_millis(req.deadline_ms);
        let cell = match engine::submit(&self.shared, &self.queue, req.key, req.machine, deadline) {
            Ok(cell) => cell,
            Err(shed) => return shed_response(shed),
        };
        match cell.wait(deadline) {
            WaitResult::Finished(Outcome::Done(body)) => {
                Response::raw_json(200, body.as_ref().clone())
            }
            WaitResult::Finished(Outcome::Expired) | WaitResult::TimedOut => Response::error(
                504,
                "deadline_exceeded",
                format!("deadline of {} ms expired", req.deadline_ms),
            ),
            WaitResult::Finished(Outcome::Failed(reference)) => Self::internal_error(&reference),
        }
    }

    fn handle_sweep(&self, body: &[u8]) -> Response {
        let req = match api::parse_sweep(body, &self.limits, &self.shared.lab) {
            Ok(req) => req,
            Err(why) => return Response::error(400, "invalid_request", why),
        };
        let deadline = Instant::now() + Duration::from_millis(req.deadline_ms);

        // Phase 0: resolve durable cells from the store. Stored bodies are
        // reparsed into values (the JSON layer's render∘parse fixed-point
        // property keeps the final rendering byte-identical); a body that
        // fails to parse is treated as a miss and recomputed.
        let mut cached: Vec<Option<Value>> = match &self.shared.store {
            Some(store) => req
                .cells
                .iter()
                .map(|(key, _)| {
                    store
                        .lookup(&key.store_key())
                        .and_then(|body| fetchmech::json::parse(&body).ok())
                })
                .collect(),
            None => vec![None; req.cells.len()],
        };

        // Phase 1: admit (or coalesce) every non-durable cell up front so
        // identical cells coalesce against each other; if any cell is
        // refused, detach everything already attached and shed the sweep as
        // a unit.
        let mut cells: Vec<Option<Arc<engine::SimCell>>> = vec![None; req.cells.len()];
        for (i, (key, machine)) in req.cells.iter().enumerate() {
            if cached[i].is_some() {
                continue;
            }
            match engine::submit(&self.shared, &self.queue, *key, machine.clone(), deadline) {
                Ok(cell) => cells[i] = Some(cell),
                Err(shed) => {
                    for cell in cells.iter().flatten() {
                        cell.detach();
                    }
                    return shed_response(shed);
                }
            }
        }

        // Phase 2: collect in deterministic grid order.
        let mut results = Vec::with_capacity(req.cells.len());
        for i in 0..req.cells.len() {
            if let Some(value) = cached[i].take() {
                results.push(value);
                continue;
            }
            let cell = cells[i].as_ref().expect("cell for non-cached slot");
            match cell.wait(deadline) {
                WaitResult::Finished(Outcome::Done(body)) => match fetchmech::json::parse(&body) {
                    Ok(value) => results.push(value),
                    Err(_) => return Self::internal_error("unrenderable result"),
                },
                WaitResult::Finished(Outcome::Expired) | WaitResult::TimedOut => {
                    // Later cells share the same deadline: detach them so
                    // their queued jobs can be skipped, then report 504.
                    for later in cells[i + 1..].iter().flatten() {
                        later.detach();
                    }
                    return Response::error(
                        504,
                        "deadline_exceeded",
                        format!(
                            "deadline of {} ms expired after {} of {} cells",
                            req.deadline_ms,
                            results.len(),
                            req.cells.len()
                        ),
                    );
                }
                WaitResult::Finished(Outcome::Failed(reference)) => {
                    for later in cells[i + 1..].iter().flatten() {
                        later.detach();
                    }
                    return Self::internal_error(&reference);
                }
            }
        }
        Response::json(
            200,
            &Value::object([
                ("jobs", Value::Uint(results.len() as u64)),
                ("results", Value::Array(results)),
            ]),
        )
    }
}

fn shed_response(shed: Shed) -> Response {
    match shed {
        Shed::QueueFull => {
            Response::error(429, "queue_full", "job queue is full; retry with backoff")
                .with_retry_after(1)
        }
        Shed::Closed => {
            Response::error(503, "shutting_down", "service is draining").with_retry_after(2)
        }
    }
}
