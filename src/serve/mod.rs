//! `fetchmech-serve`: a concurrent experiment service over the simulator.
//!
//! The service answers HTTP/1.1 + JSON requests from a process-wide shared
//! [`Lab`] (so repeated work hits the memoized trace/layout/profile caches)
//! and a bounded job queue of unit simulations layered on
//! [`fetchmech::runner::Runner`]. The pieces:
//!
//! * [`http`] — a minimal `std::net` HTTP layer (one request per
//!   connection, size-limited, `Connection: close`).
//! * [`engine`] — the coalescing job engine: identical in-flight requests
//!   share one computation; deadlines cancel queued work cooperatively.
//! * [`api`] — request validation and response rendering for
//!   `POST /v1/simulate` and `POST /v1/sweep`.
//! * [`metrics`] — counters and latency histograms behind `GET /metrics`.
//!
//! Admission control is explicit: when the bounded queue is full the
//! service sheds load with a structured `429` instead of queueing
//! unboundedly, and [`Server::shutdown`] drains in-flight work before
//! returning so a SIGTERM never truncates a running experiment.

pub mod api;
pub mod engine;
pub mod http;
pub mod metrics;

use std::io::ErrorKind;
use std::net::{TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread;
use std::time::{Duration, Instant};

use fetchmech::experiments::{ExpConfig, Lab};
use fetchmech::json::Value;
use fetchmech::runner::{JobQueue, Runner};

use api::Limits;
use engine::{EngineShared, Outcome, Shed, SimJob, WaitResult};
use http::{ReadError, Request, Response};
use metrics::Metrics;

/// Everything configurable about the service.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Bind address; port `0` picks an ephemeral port (reported by
    /// [`Server::addr`]).
    pub addr: String,
    /// Worker-pool size; `None` defers to `FETCHMECH_THREADS` / available
    /// parallelism, exactly like the CLI tools.
    pub threads: Option<usize>,
    /// Bounded job-queue capacity; submissions beyond it are shed with 429.
    pub queue_capacity: usize,
    /// Most simultaneously-served connections; beyond it, connections get an
    /// immediate 503.
    pub max_connections: usize,
    /// Default per-request deadline (ms) when the body omits `deadline_ms`.
    pub default_deadline_ms: u64,
    /// Upper cap on any requested deadline (ms).
    pub max_deadline_ms: u64,
    /// Default trace length when the body omits `insts`.
    pub default_insts: u64,
    /// Upper cap on any requested trace length.
    pub max_insts: u64,
    /// Lab sizing (trace lengths used by profiling/reordering).
    pub exp: ExpConfig,
    /// How long [`Server::shutdown`] waits for open connections to finish
    /// before abandoning them.
    pub drain_timeout: Duration,
}

impl Default for ServeConfig {
    fn default() -> Self {
        Self {
            addr: "127.0.0.1:0".to_string(),
            threads: None,
            queue_capacity: 128,
            max_connections: 128,
            default_deadline_ms: 30_000,
            max_deadline_ms: 600_000,
            default_insts: 20_000,
            max_insts: 500_000,
            exp: ExpConfig::full(),
            drain_timeout: Duration::from_secs(30),
        }
    }
}

/// Counts live connection-handler threads so shutdown can drain them.
#[derive(Debug)]
struct ConnTracker {
    max: usize,
    live: Mutex<usize>,
    idle: Condvar,
}

impl ConnTracker {
    fn new(max: usize) -> Self {
        Self {
            max: max.max(1),
            live: Mutex::new(0),
            idle: Condvar::new(),
        }
    }

    /// Claims a connection slot; `false` when the server is saturated.
    fn try_acquire(&self) -> bool {
        let mut live = self.live.lock().expect("conn lock poisoned");
        if *live >= self.max {
            return false;
        }
        *live += 1;
        true
    }

    fn release(&self) {
        let mut live = self.live.lock().expect("conn lock poisoned");
        *live -= 1;
        if *live == 0 {
            self.idle.notify_all();
        }
    }

    /// Waits until no connections remain (or the timeout passes).
    fn drain(&self, timeout: Duration) {
        let deadline = Instant::now() + timeout;
        let mut live = self.live.lock().expect("conn lock poisoned");
        while *live > 0 {
            let now = Instant::now();
            if now >= deadline {
                return;
            }
            let (guard, _) = self
                .idle
                .wait_timeout(live, deadline - now)
                .expect("conn lock poisoned");
            live = guard;
        }
    }
}

/// A running service instance. Dropping it without calling
/// [`Server::shutdown`] stops accepting but does not wait for in-flight
/// work.
#[derive(Debug)]
pub struct Server {
    addr: std::net::SocketAddr,
    stop: Arc<AtomicBool>,
    accept_thread: Option<thread::JoinHandle<()>>,
    conns: Arc<ConnTracker>,
    queue: Arc<JobQueue<SimJob>>,
    shared: Arc<EngineShared>,
    drain_timeout: Duration,
}

/// Per-connection context handed to the handler threads.
#[derive(Debug)]
struct Handler {
    shared: Arc<EngineShared>,
    queue: Arc<JobQueue<SimJob>>,
    limits: Limits,
    started: Instant,
}

impl Server {
    /// Binds, spawns the worker pool and the accept loop, and returns once
    /// the service is reachable.
    ///
    /// # Errors
    ///
    /// Returns the bind error if the address is unavailable.
    pub fn start(config: ServeConfig) -> std::io::Result<Server> {
        let listener = TcpListener::bind(&config.addr)?;
        let addr = listener.local_addr()?;
        listener.set_nonblocking(true)?;

        let runner = Runner::from_flag_or_env(config.threads);
        let queue = Arc::new(JobQueue::start(runner, config.queue_capacity));
        let metrics = Arc::new(Metrics::new());
        let lab = Arc::new(Lab::with_runner(config.exp, runner));
        let shared = Arc::new(EngineShared::new(lab, Arc::clone(&metrics)));
        let limits = Limits {
            default_insts: config.default_insts,
            max_insts: config.max_insts,
            default_deadline_ms: config.default_deadline_ms,
            max_deadline_ms: config.max_deadline_ms,
        };

        let stop = Arc::new(AtomicBool::new(false));
        let conns = Arc::new(ConnTracker::new(config.max_connections));

        let accept_stop = Arc::clone(&stop);
        let accept_conns = Arc::clone(&conns);
        let accept_shared = Arc::clone(&shared);
        let accept_queue = Arc::clone(&queue);
        let accept_thread = thread::Builder::new()
            .name("fetchmech-accept".to_string())
            .spawn(move || {
                accept_loop(
                    &listener,
                    &accept_stop,
                    &accept_conns,
                    &accept_shared,
                    &accept_queue,
                    limits,
                );
            })
            .expect("failed to spawn accept thread");

        Ok(Server {
            addr,
            stop,
            accept_thread: Some(accept_thread),
            conns,
            queue,
            shared,
            drain_timeout: config.drain_timeout,
        })
    }

    /// The actual bound address (resolves ephemeral ports).
    #[must_use]
    pub fn addr(&self) -> std::net::SocketAddr {
        self.addr
    }

    /// The engine's metrics block (exposed for tests and embedding).
    #[must_use]
    pub fn metrics(&self) -> Arc<Metrics> {
        Arc::clone(&self.shared.metrics)
    }

    /// Graceful shutdown: stop accepting, wait for open connections (up to
    /// the configured drain timeout), then close the job queue and drain any
    /// queued work.
    pub fn shutdown(mut self) {
        self.stop.store(true, Ordering::SeqCst);
        if let Some(handle) = self.accept_thread.take() {
            let _ = handle.join();
        }
        self.conns.drain(self.drain_timeout);
        self.queue.close();
        self.queue.drain();
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        self.stop.store(true, Ordering::SeqCst);
        if let Some(handle) = self.accept_thread.take() {
            let _ = handle.join();
        }
        self.queue.close();
    }
}

fn accept_loop(
    listener: &TcpListener,
    stop: &Arc<AtomicBool>,
    conns: &Arc<ConnTracker>,
    shared: &Arc<EngineShared>,
    queue: &Arc<JobQueue<SimJob>>,
    limits: Limits,
) {
    let started = Instant::now();
    while !stop.load(Ordering::SeqCst) {
        match listener.accept() {
            Ok((stream, _peer)) => {
                let _ = stream.set_read_timeout(Some(Duration::from_secs(10)));
                let _ = stream.set_write_timeout(Some(Duration::from_secs(10)));
                if !conns.try_acquire() {
                    refuse_saturated(stream, shared);
                    continue;
                }
                let handler = Handler {
                    shared: Arc::clone(shared),
                    queue: Arc::clone(queue),
                    limits,
                    started,
                };
                let thread_conns = Arc::clone(conns);
                let spawned = thread::Builder::new()
                    .name("fetchmech-conn".to_string())
                    .spawn(move || {
                        handler.serve_connection(stream);
                        thread_conns.release();
                    });
                if spawned.is_err() {
                    conns.release();
                }
            }
            Err(e) if e.kind() == ErrorKind::WouldBlock => {
                thread::sleep(Duration::from_millis(5));
            }
            Err(_) => thread::sleep(Duration::from_millis(5)),
        }
    }
}

/// Over the connection cap: answer 503 inline on the accept thread (cheap —
/// no simulation work) rather than silently dropping the socket.
fn refuse_saturated(mut stream: TcpStream, shared: &Arc<EngineShared>) {
    shared
        .metrics
        .resp_unavailable
        .fetch_add(1, Ordering::Relaxed);
    let resp = Response::error(503, "saturated", "connection limit reached; retry shortly");
    let _ = resp.write_to(&mut stream);
}

impl Handler {
    fn serve_connection(&self, mut stream: TcpStream) {
        let request = match http::read_request(&mut stream) {
            Ok(req) => req,
            Err(ReadError::Closed) => return,
            Err(ReadError::Io(_)) => return,
            Err(ReadError::TooLarge) => {
                self.finish(
                    &mut stream,
                    Response::error(413, "too_large", "request exceeds size limits"),
                );
                return;
            }
            Err(ReadError::Malformed(why)) => {
                self.finish(&mut stream, Response::error(400, "malformed", why));
                return;
            }
        };
        let response = self.route(&request);
        self.finish(&mut stream, response);
    }

    fn finish(&self, stream: &mut TcpStream, response: Response) {
        self.shared.metrics.record_status(response.status);
        let _ = response.write_to(stream);
    }

    fn route(&self, request: &Request) -> Response {
        let metrics = &self.shared.metrics;
        match (request.method.as_str(), request.path.as_str()) {
            ("GET", "/healthz") => {
                metrics.req_healthz.fetch_add(1, Ordering::Relaxed);
                Response::json(200, &api::healthz_json())
            }
            ("GET", "/metrics") => {
                metrics.req_metrics.fetch_add(1, Ordering::Relaxed);
                Response::json(200, &self.metrics_json())
            }
            ("POST", "/v1/simulate") => {
                metrics.req_simulate.fetch_add(1, Ordering::Relaxed);
                let t0 = Instant::now();
                let resp = self.handle_simulate(&request.body);
                metrics.record_latency(t0.elapsed());
                resp
            }
            ("POST", "/v1/sweep") => {
                metrics.req_sweep.fetch_add(1, Ordering::Relaxed);
                let t0 = Instant::now();
                let resp = self.handle_sweep(&request.body);
                metrics.record_latency(t0.elapsed());
                resp
            }
            ("GET" | "POST", _) => {
                metrics.req_other.fetch_add(1, Ordering::Relaxed);
                Response::error(404, "not_found", format!("no route for {}", request.path))
            }
            _ => {
                metrics.req_other.fetch_add(1, Ordering::Relaxed);
                Response::error(
                    405,
                    "method_not_allowed",
                    format!("method {}", request.method),
                )
            }
        }
    }

    fn metrics_json(&self) -> Value {
        let lab_cache = self.shared.lab.cache_stats().to_json();
        self.shared.metrics.to_json(
            self.started.elapsed(),
            self.queue.depth(),
            self.queue.capacity(),
            self.queue.running(),
            self.queue.workers(),
            &lab_cache,
        )
    }

    fn handle_simulate(&self, body: &[u8]) -> Response {
        let req = match api::parse_simulate(body, &self.limits) {
            Ok(req) => req,
            Err(why) => return Response::error(400, "invalid_request", why),
        };
        let deadline = Instant::now() + Duration::from_millis(req.deadline_ms);
        let cell = match engine::submit(&self.shared, &self.queue, req.key, req.machine, deadline) {
            Ok(cell) => cell,
            Err(shed) => return shed_response(shed),
        };
        match cell.wait(deadline) {
            WaitResult::Finished(Outcome::Done(result)) => {
                Response::json(200, &api::sim_result_json(&req.key, &result))
            }
            WaitResult::Finished(Outcome::Expired) | WaitResult::TimedOut => Response::error(
                504,
                "deadline_exceeded",
                format!("deadline of {} ms expired", req.deadline_ms),
            ),
            WaitResult::Finished(Outcome::Failed(why)) => {
                Response::error(500, "simulation_failed", why)
            }
        }
    }

    fn handle_sweep(&self, body: &[u8]) -> Response {
        let req = match api::parse_sweep(body, &self.limits) {
            Ok(req) => req,
            Err(why) => return Response::error(400, "invalid_request", why),
        };
        let deadline = Instant::now() + Duration::from_millis(req.deadline_ms);

        // Phase 1: admit (or coalesce) the whole grid up front so identical
        // cells coalesce against each other; if any cell is refused, detach
        // everything already attached and shed the sweep as a unit.
        let mut cells = Vec::with_capacity(req.cells.len());
        for (key, machine) in &req.cells {
            match engine::submit(&self.shared, &self.queue, *key, machine.clone(), deadline) {
                Ok(cell) => cells.push(cell),
                Err(shed) => {
                    for cell in &cells {
                        cell.detach();
                    }
                    return shed_response(shed);
                }
            }
        }

        // Phase 2: collect in deterministic grid order.
        let mut results = Vec::with_capacity(cells.len());
        for ((key, _), cell) in req.cells.iter().zip(&cells) {
            match cell.wait(deadline) {
                WaitResult::Finished(Outcome::Done(result)) => {
                    results.push(api::sim_result_json(key, &result));
                }
                WaitResult::Finished(Outcome::Expired) | WaitResult::TimedOut => {
                    // Later cells share the same deadline: detach them so
                    // their queued jobs can be skipped, then report 504.
                    for later in &cells[results.len() + 1..] {
                        later.detach();
                    }
                    return Response::error(
                        504,
                        "deadline_exceeded",
                        format!(
                            "deadline of {} ms expired after {} of {} cells",
                            req.deadline_ms,
                            results.len(),
                            req.cells.len()
                        ),
                    );
                }
                WaitResult::Finished(Outcome::Failed(why)) => {
                    for later in &cells[results.len() + 1..] {
                        later.detach();
                    }
                    return Response::error(500, "simulation_failed", why);
                }
            }
        }
        Response::json(
            200,
            &Value::object([
                ("jobs", Value::Uint(results.len() as u64)),
                ("results", Value::Array(results)),
            ]),
        )
    }
}

fn shed_response(shed: Shed) -> Response {
    match shed {
        Shed::QueueFull => {
            Response::error(429, "queue_full", "job queue is full; retry with backoff")
        }
        Shed::Closed => Response::error(503, "shutting_down", "service is draining"),
    }
}
