//! The simulation engine behind the HTTP endpoints: a process-wide shared
//! [`Lab`] plus a bounded [`JobQueue`] of unit simulations, with request
//! coalescing and per-request deadlines.
//!
//! Every HTTP request — a single `/v1/simulate` or each cell of a
//! `/v1/sweep` grid — becomes a [`SimKey`]. Identical keys that are already
//! *in flight* (queued or running) are **coalesced**: the second requester
//! attaches as a waiter on the first's [`SimCell`] instead of consuming a
//! queue slot, so a thundering herd of identical sweeps costs one
//! computation. Deadlines are cooperative: a waiter that times out detaches,
//! and a job whose waiters have all detached (or whose latest deadline has
//! passed) is skipped by the queue's between-jobs cancellation check.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::Instant;

use fetchmech::experiments::{Lab, LayoutVariant, TraceKey};
use fetchmech::pipeline::MachineModel;
use fetchmech::runner::{JobQueue, QueueJob, SubmitError};
use fetchmech::workloads::InputId;
use fetchmech::{simulate, SchemeKind};

use crate::store::{FaultPlan, Store};

use super::metrics::Metrics;

/// Full identity of one unit simulation — the coalescing key. Two requests
/// with equal keys are guaranteed byte-identical responses, so they may
/// share one computation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct SimKey {
    /// Benchmark name (interned to the suite's static name).
    pub bench: &'static str,
    /// Machine model name, lower-case (`p14` / `p18` / `p112`).
    pub machine: &'static str,
    /// Fetch scheme.
    pub scheme: SchemeKind,
    /// Program/layout variant.
    pub variant: LayoutVariant,
    /// Dynamic trace length.
    pub insts: u64,
}

impl SimKey {
    /// The canonical store key: a stable, human-greppable string identity.
    /// Every field participates, so two keys collide only when their
    /// responses are byte-identical anyway.
    #[must_use]
    pub fn store_key(&self) -> String {
        format!(
            "{}|{}|{}|{}|{}",
            self.bench,
            self.machine,
            self.scheme.name(),
            self.variant.name(),
            self.insts
        )
    }
}

/// How a unit simulation ended.
#[derive(Debug, Clone)]
pub enum Outcome {
    /// The simulation ran; here is its fully-rendered response body (the
    /// single rendering shared by the HTTP response, every coalesced
    /// waiter, and the persistent store — which is what makes "byte
    /// identical across restarts" a structural property rather than a
    /// re-rendering promise).
    Done(Arc<String>),
    /// The job was skipped: every waiter detached or the deadline passed
    /// before a worker reached it.
    Expired,
    /// The simulation panicked. Carries only the opaque error reference id;
    /// the payload was logged server-side.
    Failed(String),
}

/// What a waiting request observed.
#[derive(Debug, Clone)]
pub enum WaitResult {
    /// Job finished with this outcome.
    Finished(Outcome),
    /// The caller's own deadline expired first (the job may still run for
    /// other waiters).
    TimedOut,
}

/// The shared slot one in-flight [`SimKey`] resolves through.
#[derive(Debug)]
pub struct SimCell {
    state: Mutex<CellState>,
    done: Condvar,
}

#[derive(Debug)]
struct CellState {
    /// Requests currently waiting on this cell. When it drops to zero
    /// before a worker picks the job up, the job is cancelled.
    waiters: usize,
    /// Latest deadline over all (current and past) waiters; the job is
    /// pointless once this has passed.
    deadline: Instant,
    outcome: Option<Outcome>,
}

impl SimCell {
    fn new(deadline: Instant) -> Self {
        Self {
            state: Mutex::new(CellState {
                waiters: 1,
                deadline,
                outcome: None,
            }),
            done: Condvar::new(),
        }
    }

    /// Blocks until the job finishes or `deadline` passes, whichever is
    /// first. Detaches this waiter on timeout.
    pub fn wait(&self, deadline: Instant) -> WaitResult {
        let mut state = self.state.lock().expect("cell lock poisoned");
        loop {
            if let Some(outcome) = &state.outcome {
                return WaitResult::Finished(outcome.clone());
            }
            let now = Instant::now();
            if now >= deadline {
                state.waiters -= 1;
                return WaitResult::TimedOut;
            }
            let (guard, _) = self
                .done
                .wait_timeout(state, deadline - now)
                .expect("cell lock poisoned");
            state = guard;
        }
    }

    /// Detaches one waiter without waiting (used when a sweep aborts after
    /// a partial submission).
    pub fn detach(&self) {
        self.state.lock().expect("cell lock poisoned").waiters -= 1;
    }

    fn finish(&self, outcome: Outcome) {
        let mut state = self.state.lock().expect("cell lock poisoned");
        state.outcome = Some(outcome);
        drop(state);
        self.done.notify_all();
    }
}

/// State shared between the HTTP handlers and the queue workers.
#[derive(Debug)]
pub struct EngineShared {
    /// The process-wide experiment lab (trace/layout/profile caches).
    pub lab: Arc<Lab>,
    /// All metrics counters.
    pub metrics: Arc<Metrics>,
    /// The crash-safe result store, when persistence is configured.
    pub store: Option<Arc<Store>>,
    /// Engine-side fault schedule (deterministic `sim_panic` injection);
    /// `None` in production.
    pub fault: Option<FaultPlan>,
    /// Monotonic source of opaque error reference ids (`err-000001`, …).
    error_seq: AtomicU64,
    /// In-flight (queued or running) jobs, by key — the coalescing table.
    inflight: Mutex<HashMap<SimKey, Arc<SimCell>>>,
}

impl EngineShared {
    /// Creates the shared state around an existing lab, with no persistence
    /// and no fault injection.
    #[must_use]
    pub fn new(lab: Arc<Lab>, metrics: Arc<Metrics>) -> Self {
        Self::with_store(lab, metrics, None, None)
    }

    /// Creates the shared state with an optional persistent store and an
    /// optional engine-side fault schedule.
    #[must_use]
    pub fn with_store(
        lab: Arc<Lab>,
        metrics: Arc<Metrics>,
        store: Option<Arc<Store>>,
        fault: Option<FaultPlan>,
    ) -> Self {
        Self {
            lab,
            metrics,
            store,
            fault,
            error_seq: AtomicU64::new(0),
            inflight: Mutex::new(HashMap::new()),
        }
    }

    /// Mints the next opaque error reference id.
    fn next_error_id(&self) -> String {
        let n = self.error_seq.fetch_add(1, Ordering::Relaxed) + 1;
        format!("err-{n:06}")
    }

    /// Removes `cell` from the in-flight table (only if the table still maps
    /// the key to this very cell — a successor job may have replaced it).
    fn remove_inflight(&self, key: &SimKey, cell: &Arc<SimCell>) {
        let mut map = self.inflight.lock().expect("inflight lock poisoned");
        if map.get(key).is_some_and(|c| Arc::ptr_eq(c, cell)) {
            map.remove(key);
        }
    }
}

/// Why a submission was refused.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Shed {
    /// The bounded queue is full — respond 429.
    QueueFull,
    /// The service is draining for shutdown — respond 503.
    Closed,
}

/// Submits (or coalesces) one unit simulation and returns the cell to wait
/// on.
///
/// If an identical job is already in flight the caller attaches to it (no
/// queue slot consumed, `jobs_coalesced` incremented); otherwise a fresh job
/// is admitted to `queue` — or refused, when the queue is full or closed.
///
/// # Errors
///
/// [`Shed::QueueFull`] or [`Shed::Closed`]; the caller maps these to
/// structured 429/503 responses.
pub fn submit(
    shared: &Arc<EngineShared>,
    queue: &JobQueue<SimJob>,
    key: SimKey,
    machine: MachineModel,
    deadline: Instant,
) -> Result<Arc<SimCell>, Shed> {
    let metrics = &shared.metrics;
    let mut map = shared.inflight.lock().expect("inflight lock poisoned");
    if let Some(cell) = map.get(&key) {
        let mut state = cell.state.lock().expect("cell lock poisoned");
        if state.outcome.is_none() {
            state.waiters += 1;
            state.deadline = state.deadline.max(deadline);
            drop(state);
            metrics
                .jobs_coalesced
                .fetch_add(1, std::sync::atomic::Ordering::Relaxed);
            return Ok(Arc::clone(cell));
        }
        // Finished cell still in the table (tiny window between outcome and
        // removal): treat as not in flight and submit fresh below.
    }
    let cell = Arc::new(SimCell::new(deadline));
    let job = SimJob {
        key,
        machine,
        cell: Arc::clone(&cell),
        shared: Arc::clone(shared),
    };
    match queue.try_submit(job) {
        Ok(()) => {
            map.insert(key, Arc::clone(&cell));
            metrics
                .jobs_enqueued
                .fetch_add(1, std::sync::atomic::Ordering::Relaxed);
            Ok(cell)
        }
        Err(SubmitError::Full(_)) => {
            metrics
                .jobs_shed
                .fetch_add(1, std::sync::atomic::Ordering::Relaxed);
            Err(Shed::QueueFull)
        }
        Err(SubmitError::Closed(_)) => Err(Shed::Closed),
    }
}

/// One queued unit simulation.
pub struct SimJob {
    key: SimKey,
    machine: MachineModel,
    cell: Arc<SimCell>,
    shared: Arc<EngineShared>,
}

impl std::fmt::Debug for SimJob {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SimJob").field("key", &self.key).finish()
    }
}

impl QueueJob for SimJob {
    fn run(self) {
        let lab = Arc::clone(&self.shared.lab);
        let key = self.key;
        let machine = self.machine.clone();
        let store_key = key.store_key();
        let inject_panic = self
            .shared
            .fault
            .as_ref()
            .is_some_and(|plan| plan.rolls_sim_panic(&store_key));
        let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(move || {
            if inject_panic {
                panic!("injected fault: sim_panic (deterministic, seeded)");
            }
            let trace = lab.trace(TraceKey {
                bench: key.bench,
                variant: key.variant,
                block_bytes: machine.block_bytes,
                input: InputId::TEST,
                limit: key.insts,
            });
            simulate(&machine, key.scheme, &trace)
        }));
        let metrics = &self.shared.metrics;
        let outcome = match outcome {
            Ok(result) => {
                metrics.jobs_completed.fetch_add(1, Ordering::Relaxed);
                // Render once; this exact string is the response body, the
                // coalesced waiters' body, and the store record.
                let body = Arc::new(super::api::sim_result_json(&key, &result).pretty());
                if let Some(store) = &self.shared.store {
                    store.persist(store_key, &body);
                }
                Outcome::Done(body)
            }
            Err(payload) => {
                metrics.jobs_failed.fetch_add(1, Ordering::Relaxed);
                // Log the details server-side; clients get only the opaque
                // reference id (internal panic payloads can leak paths,
                // assertions, and other implementation detail).
                let id = self.shared.next_error_id();
                let detail: &str = if let Some(s) = payload.downcast_ref::<&str>() {
                    s
                } else if let Some(s) = payload.downcast_ref::<String>() {
                    s
                } else {
                    "non-string panic payload"
                };
                eprintln!("fetchmech-serve: [{id}] simulation panicked for {key:?}: {detail}");
                Outcome::Failed(id)
            }
        };
        // Leave the coalescing table first so late identical requests start
        // a fresh job instead of attaching to a finished cell.
        self.shared.remove_inflight(&self.key, &self.cell);
        self.cell.finish(outcome);
    }

    fn cancelled(&self) -> bool {
        let state = self.cell.state.lock().expect("cell lock poisoned");
        state.waiters == 0 || Instant::now() >= state.deadline
    }

    fn skip(self) {
        self.shared
            .metrics
            .jobs_expired
            .fetch_add(1, std::sync::atomic::Ordering::Relaxed);
        self.shared.remove_inflight(&self.key, &self.cell);
        self.cell.finish(Outcome::Expired);
    }
}
