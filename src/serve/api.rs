//! Request parsing and response rendering for the `/v1/*` endpoints.
//!
//! All parsing is strict-but-defaulted: unknown fields are rejected, missing
//! optional fields take documented defaults, and every numeric input is
//! capped against the server's [`Limits`] so a single request can neither
//! monopolise the workers nor allocate unboundedly.

use std::str::FromStr;

use fetchmech::experiments::{Lab, LayoutVariant};
use fetchmech::json::Value;
use fetchmech::pipeline::MachineModel;
use fetchmech::workloads::suite;
use fetchmech::{SchemeKind, SimResult};
use fetchmech_frontend::Format;

use super::engine::SimKey;

/// Hard per-request caps and defaults, taken from the server configuration.
#[derive(Debug, Clone, Copy)]
pub struct Limits {
    /// `insts` used when the request omits it.
    pub default_insts: u64,
    /// Largest accepted `insts`.
    pub max_insts: u64,
    /// `deadline_ms` used when the request omits it.
    pub default_deadline_ms: u64,
    /// Largest accepted `deadline_ms`.
    pub max_deadline_ms: u64,
}

/// Most grid cells a single `/v1/sweep` may expand to.
pub const MAX_SWEEP_JOBS: usize = 512;

/// A validated `/v1/simulate` request.
#[derive(Debug, Clone)]
pub struct SimulateRequest {
    /// The coalescing key (also echoed in the response).
    pub key: SimKey,
    /// The resolved machine model.
    pub machine: MachineModel,
    /// Per-request deadline, milliseconds.
    pub deadline_ms: u64,
}

/// A validated `/v1/sweep` request: the expanded grid in deterministic
/// benches × machines × schemes × layouts order.
#[derive(Debug, Clone)]
pub struct SweepRequest {
    /// One entry per grid cell, in response order.
    pub cells: Vec<(SimKey, MachineModel)>,
    /// Per-request deadline, milliseconds (shared by the whole sweep).
    pub deadline_ms: u64,
}

/// Interns a benchmark name to its `&'static str`, validating it exists —
/// either a suite benchmark or an uploaded external program registered via
/// `POST /v1/programs`.
fn intern_bench(lab: &Lab, name: &str) -> Result<&'static str, String> {
    lab.intern_name(name)
        .ok_or_else(|| format!("unknown bench {name:?} (see /healthz for the suite)"))
}

/// Resolves a machine name to `(static lower-case name, model)`.
fn resolve_machine(name: &str) -> Result<(&'static str, MachineModel), String> {
    let stat = match name.to_ascii_lowercase().as_str() {
        "p14" => "p14",
        "p18" => "p18",
        "p112" => "p112",
        _ => {
            return Err(format!(
                "unknown machine {name:?} (expected p14, p18, or p112)"
            ))
        }
    };
    let model = MachineModel::by_name(stat).ok_or_else(|| format!("unknown machine {name:?}"))?;
    Ok((stat, model))
}

fn parse_body(body: &[u8]) -> Result<Value, String> {
    let text = std::str::from_utf8(body).map_err(|_| "body is not UTF-8".to_string())?;
    if text.trim().is_empty() {
        return Err("empty body (expected a JSON object)".to_string());
    }
    fetchmech::json::parse(text).map_err(|e| format!("invalid JSON: {e}"))
}

/// Extracts an object and rejects unknown keys.
fn object_fields<'v>(value: &'v Value, allowed: &[&str]) -> Result<&'v [(String, Value)], String> {
    let Value::Object(fields) = value else {
        return Err("body must be a JSON object".to_string());
    };
    for (k, _) in fields {
        if !allowed.contains(&k.as_str()) {
            return Err(format!(
                "unknown field {k:?} (allowed: {})",
                allowed.join(", ")
            ));
        }
    }
    Ok(fields)
}

fn get<'v>(fields: &'v [(String, Value)], key: &str) -> Option<&'v Value> {
    fields.iter().find(|(k, _)| k == key).map(|(_, v)| v)
}

fn as_str<'v>(v: &'v Value, key: &str) -> Result<&'v str, String> {
    match v {
        Value::Str(s) => Ok(s),
        _ => Err(format!("{key} must be a string")),
    }
}

fn as_u64(v: &Value, key: &str) -> Result<u64, String> {
    match v {
        Value::Uint(n) => Ok(*n),
        _ => Err(format!("{key} must be a non-negative integer")),
    }
}

fn parse_insts(fields: &[(String, Value)], limits: &Limits) -> Result<u64, String> {
    match get(fields, "insts") {
        None => Ok(limits.default_insts),
        Some(v) => {
            let n = as_u64(v, "insts")?;
            if n == 0 {
                return Err("insts must be positive".to_string());
            }
            if n > limits.max_insts {
                return Err(format!("insts {n} exceeds the cap of {}", limits.max_insts));
            }
            Ok(n)
        }
    }
}

fn parse_deadline(fields: &[(String, Value)], limits: &Limits) -> Result<u64, String> {
    match get(fields, "deadline_ms") {
        None => Ok(limits.default_deadline_ms),
        Some(v) => {
            let n = as_u64(v, "deadline_ms")?;
            if n == 0 {
                return Err("deadline_ms must be positive".to_string());
            }
            Ok(n.min(limits.max_deadline_ms))
        }
    }
}

fn parse_scheme(name: &str) -> Result<SchemeKind, String> {
    SchemeKind::from_str(name).map_err(|_| {
        let all: Vec<&str> = SchemeKind::ALL.iter().map(|s| s.name()).collect();
        format!(
            "unknown scheme {name:?} (expected one of: {})",
            all.join(", ")
        )
    })
}

fn parse_layout(name: &str) -> Result<LayoutVariant, String> {
    LayoutVariant::from_str(name).map_err(|e| e.to_string())
}

/// Parses and validates a `/v1/simulate` body.
///
/// # Errors
///
/// A human-readable validation message, rendered as a structured 400.
pub fn parse_simulate(body: &[u8], limits: &Limits, lab: &Lab) -> Result<SimulateRequest, String> {
    let value = parse_body(body)?;
    let fields = object_fields(
        &value,
        &[
            "bench",
            "machine",
            "scheme",
            "layout",
            "insts",
            "deadline_ms",
        ],
    )?;
    let bench = intern_bench(
        lab,
        as_str(
            get(fields, "bench").ok_or("missing required field \"bench\"")?,
            "bench",
        )?,
    )?;
    let (machine_name, machine) = match get(fields, "machine") {
        None => resolve_machine("p14")?,
        Some(v) => resolve_machine(as_str(v, "machine")?)?,
    };
    let scheme = match get(fields, "scheme") {
        None => SchemeKind::CollapsingBuffer,
        Some(v) => parse_scheme(as_str(v, "scheme")?)?,
    };
    let variant = match get(fields, "layout") {
        None => LayoutVariant::Natural,
        Some(v) => parse_layout(as_str(v, "layout")?)?,
    };
    let insts = parse_insts(fields, limits)?;
    let deadline_ms = parse_deadline(fields, limits)?;
    Ok(SimulateRequest {
        key: SimKey {
            bench,
            machine: machine_name,
            scheme,
            variant,
            insts,
        },
        machine,
        deadline_ms,
    })
}

fn string_list<'v>(
    fields: &'v [(String, Value)],
    key: &str,
) -> Result<Option<Vec<&'v str>>, String> {
    match get(fields, key) {
        None => Ok(None),
        Some(Value::Array(items)) => {
            if items.is_empty() {
                return Err(format!("{key} must be a non-empty array"));
            }
            items
                .iter()
                .map(|v| as_str(v, key))
                .collect::<Result<Vec<_>, _>>()
                .map(Some)
        }
        Some(_) => Err(format!("{key} must be an array of strings")),
    }
}

/// Parses and validates a `/v1/sweep` body, expanding the grid.
///
/// # Errors
///
/// A human-readable validation message, rendered as a structured 400.
pub fn parse_sweep(body: &[u8], limits: &Limits, lab: &Lab) -> Result<SweepRequest, String> {
    let value = parse_body(body)?;
    let fields = object_fields(
        &value,
        &[
            "benches",
            "machines",
            "schemes",
            "layouts",
            "insts",
            "deadline_ms",
        ],
    )?;
    let benches = string_list(fields, "benches")?
        .ok_or("missing required field \"benches\"")?
        .into_iter()
        .map(|name| intern_bench(lab, name))
        .collect::<Result<Vec<_>, _>>()?;
    let machines = match string_list(fields, "machines")? {
        None => vec![resolve_machine("p14")?],
        Some(names) => names
            .into_iter()
            .map(resolve_machine)
            .collect::<Result<Vec<_>, _>>()?,
    };
    let schemes: Vec<SchemeKind> = match string_list(fields, "schemes")? {
        None => SchemeKind::ALL.to_vec(),
        Some(names) => names
            .into_iter()
            .map(parse_scheme)
            .collect::<Result<Vec<_>, _>>()?,
    };
    let layouts: Vec<LayoutVariant> = match string_list(fields, "layouts")? {
        None => vec![LayoutVariant::Natural],
        Some(names) => names
            .into_iter()
            .map(parse_layout)
            .collect::<Result<Vec<_>, _>>()?,
    };
    let insts = parse_insts(fields, limits)?;
    let deadline_ms = parse_deadline(fields, limits)?;

    let total = benches.len() * machines.len() * schemes.len() * layouts.len();
    if total > MAX_SWEEP_JOBS {
        return Err(format!(
            "sweep grid of {total} cells exceeds the cap of {MAX_SWEEP_JOBS}"
        ));
    }
    let mut cells = Vec::with_capacity(total);
    for &bench in &benches {
        for (machine_name, machine) in &machines {
            for &scheme in &schemes {
                for &variant in &layouts {
                    cells.push((
                        SimKey {
                            bench,
                            machine: machine_name,
                            scheme,
                            variant,
                            insts,
                        },
                        machine.clone(),
                    ));
                }
            }
        }
    }
    Ok(SweepRequest { cells, deadline_ms })
}

/// A validated `/v1/programs` upload: the declared frontend format plus the
/// raw program source, ready for `fetchmech_frontend::parse`.
#[derive(Debug, Clone)]
pub struct ProgramUpload {
    /// The declared source format.
    pub format: Format,
    /// The program text (Bril JSON or WAT).
    pub source: String,
}

/// Parses and validates a `/v1/programs` body: a JSON object with a
/// `format` tag (`"bril"` or `"wat"`) and the program `source` as a string.
///
/// # Errors
///
/// A human-readable validation message, rendered as a structured 400.
pub fn parse_program_upload(body: &[u8]) -> Result<ProgramUpload, String> {
    let value = parse_body(body)?;
    let fields = object_fields(&value, &["format", "source"])?;
    let format_name = as_str(
        get(fields, "format").ok_or("missing required field \"format\"")?,
        "format",
    )?;
    let format = Format::from_str(format_name)
        .map_err(|_| format!("unknown format {format_name:?} (expected \"bril\" or \"wat\")"))?;
    let source = as_str(
        get(fields, "source").ok_or("missing required field \"source\"")?,
        "source",
    )?
    .to_string();
    if source.trim().is_empty() {
        return Err("source must not be empty".to_string());
    }
    Ok(ProgramUpload { format, source })
}

/// Renders one simulation result, echoing the request key so responses are
/// self-describing inside sweep arrays.
#[must_use]
pub fn sim_result_json(key: &SimKey, result: &SimResult) -> Value {
    Value::object([
        ("bench", Value::Str(key.bench.to_string())),
        ("machine", Value::Str(key.machine.to_string())),
        ("scheme", Value::Str(result.scheme.name().to_string())),
        ("layout", Value::Str(key.variant.name().to_string())),
        ("insts", Value::Uint(key.insts)),
        ("cycles", Value::Uint(result.cycles)),
        ("retired", Value::Uint(result.retired)),
        ("retired_useful", Value::Uint(result.retired_useful)),
        ("delivered", Value::Uint(result.delivered)),
        ("ipc", Value::Num(result.ipc())),
        ("eir", Value::Num(result.eir())),
        (
            "fetch",
            Value::object([
                ("packets", Value::Uint(result.fetch.packets)),
                (
                    "miss_stall_cycles",
                    Value::Uint(result.fetch.miss_stall_cycles),
                ),
                (
                    "redirect_stall_cycles",
                    Value::Uint(result.fetch.redirect_stall_cycles),
                ),
                ("mispredicts", Value::Uint(result.fetch.mispredicts)),
                ("bank_conflicts", Value::Uint(result.fetch.bank_conflicts)),
                ("collapsed", Value::Uint(result.fetch.collapsed)),
            ]),
        ),
        (
            "icache",
            Value::object([
                ("accesses", Value::Uint(result.icache.accesses)),
                ("misses", Value::Uint(result.icache.misses)),
            ]),
        ),
        (
            "btb",
            Value::object([
                ("lookups", Value::Uint(result.btb.lookups)),
                ("hits", Value::Uint(result.btb.hits)),
                ("allocations", Value::Uint(result.btb.allocations)),
                ("evictions", Value::Uint(result.btb.evictions)),
            ]),
        ),
    ])
}

/// The `/healthz` body: liveness plus the vocabulary clients need to build
/// requests. `store_state` is the persistence tier's health — `"disabled"`
/// (no store configured), `"active"`, or `"degraded"` (persistence failed;
/// serving from memory). `programs` lists the external program ids uploaded
/// through `POST /v1/programs` this process lifetime, sorted.
#[must_use]
pub fn healthz_json(store_state: &str, programs: &[&'static str]) -> Value {
    let benches: Vec<Value> = suite::INT_NAMES
        .iter()
        .chain(suite::FP_NAMES.iter())
        .map(|b| Value::Str((*b).to_string()))
        .collect();
    let schemes: Vec<Value> = SchemeKind::ALL
        .iter()
        .map(|s| Value::Str(s.name().to_string()))
        .collect();
    let layouts: Vec<Value> = [
        LayoutVariant::Natural,
        LayoutVariant::PadAll,
        LayoutVariant::Reordered,
        LayoutVariant::PadTrace,
    ]
    .iter()
    .map(|v| Value::Str(v.name().to_string()))
    .collect();
    Value::object([
        ("status", Value::Str("ok".to_string())),
        ("store", Value::Str(store_state.to_string())),
        ("benches", Value::Array(benches)),
        (
            "machines",
            Value::Array(vec![
                Value::Str("p14".to_string()),
                Value::Str("p18".to_string()),
                Value::Str("p112".to_string()),
            ]),
        ),
        ("schemes", Value::Array(schemes)),
        ("layouts", Value::Array(layouts)),
        (
            "programs",
            Value::Array(
                programs
                    .iter()
                    .map(|p| Value::Str((*p).to_string()))
                    .collect(),
            ),
        ),
    ])
}
