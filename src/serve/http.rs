//! A minimal HTTP/1.1 layer over `std::net::TcpStream` — just enough for the
//! experiment service: one request per connection, JSON bodies, explicit
//! size limits on untrusted input, `Connection: close` semantics.

use std::io::{Read, Write};
use std::net::TcpStream;

use fetchmech::json::Value;

/// Maximum bytes of request head (request line + headers) accepted.
const MAX_HEAD_BYTES: usize = 16 * 1024;
/// Maximum request body accepted.
const MAX_BODY_BYTES: usize = 256 * 1024;

/// A parsed request: method, path, and the (possibly empty) body.
#[derive(Debug)]
pub struct Request {
    /// Request method, upper-case as received (`GET`, `POST`, …).
    pub method: String,
    /// Request target path, e.g. `/v1/simulate` (query strings are kept
    /// verbatim; the service does not use them).
    pub path: String,
    /// Raw request body.
    pub body: Vec<u8>,
}

/// Why a request could not be read.
#[derive(Debug)]
pub enum ReadError {
    /// Socket error (including read timeouts).
    Io(std::io::Error),
    /// Head or body exceeded the size limits.
    TooLarge,
    /// The bytes were not a well-formed HTTP/1.x request.
    Malformed(&'static str),
    /// The peer closed the connection before sending a full request (an
    /// empty probe connection, e.g. a health checker's TCP ping).
    Closed,
}

impl From<std::io::Error> for ReadError {
    fn from(e: std::io::Error) -> Self {
        ReadError::Io(e)
    }
}

/// Reads one request from the stream.
///
/// # Errors
///
/// See [`ReadError`]; callers map `TooLarge` to 413, `Malformed` to 400, and
/// drop the connection silently on `Closed`.
pub fn read_request(stream: &mut TcpStream) -> Result<Request, ReadError> {
    let mut buf: Vec<u8> = Vec::with_capacity(1024);
    let mut chunk = [0u8; 4096];
    let head_end = loop {
        if let Some(pos) = find_head_end(&buf) {
            break pos;
        }
        if buf.len() > MAX_HEAD_BYTES {
            return Err(ReadError::TooLarge);
        }
        let n = stream.read(&mut chunk)?;
        if n == 0 {
            return if buf.is_empty() {
                Err(ReadError::Closed)
            } else {
                Err(ReadError::Malformed("truncated request head"))
            };
        }
        buf.extend_from_slice(&chunk[..n]);
    };

    let head = std::str::from_utf8(&buf[..head_end])
        .map_err(|_| ReadError::Malformed("request head is not UTF-8"))?;
    let mut lines = head.split("\r\n");
    let request_line = lines.next().ok_or(ReadError::Malformed("empty request"))?;
    let mut parts = request_line.split(' ');
    let method = parts
        .next()
        .filter(|m| !m.is_empty())
        .ok_or(ReadError::Malformed("missing method"))?
        .to_string();
    let path = parts
        .next()
        .filter(|p| p.starts_with('/'))
        .ok_or(ReadError::Malformed("missing request path"))?
        .to_string();
    let version = parts
        .next()
        .ok_or(ReadError::Malformed("missing version"))?;
    if !version.starts_with("HTTP/1.") {
        return Err(ReadError::Malformed("unsupported HTTP version"));
    }

    let mut content_length = 0usize;
    for line in lines {
        if let Some((name, value)) = line.split_once(':') {
            if name.eq_ignore_ascii_case("content-length") {
                content_length = value
                    .trim()
                    .parse()
                    .map_err(|_| ReadError::Malformed("bad Content-Length"))?;
            }
        }
    }
    if content_length > MAX_BODY_BYTES {
        return Err(ReadError::TooLarge);
    }

    let mut body = buf[head_end + 4..].to_vec();
    while body.len() < content_length {
        let n = stream.read(&mut chunk)?;
        if n == 0 {
            return Err(ReadError::Malformed("truncated request body"));
        }
        body.extend_from_slice(&chunk[..n]);
    }
    body.truncate(content_length);
    Ok(Request { method, path, body })
}

fn find_head_end(buf: &[u8]) -> Option<usize> {
    buf.windows(4).position(|w| w == b"\r\n\r\n")
}

/// A JSON response ready to be written.
#[derive(Debug)]
pub struct Response {
    /// HTTP status code.
    pub status: u16,
    /// Rendered JSON body (without the trailing newline; one is added on the
    /// wire for terminal friendliness).
    pub body: String,
    /// When set, a `Retry-After: <secs>` header — attached to 429/503 shed
    /// responses so well-behaved clients back off instead of hammering.
    pub retry_after: Option<u64>,
}

impl Response {
    /// A response whose body is the pretty-rendered `value`.
    #[must_use]
    pub fn json(status: u16, value: &Value) -> Self {
        Self {
            status,
            body: value.pretty(),
            retry_after: None,
        }
    }

    /// A 200 response around an already-rendered JSON body (the store's
    /// byte-identical replay path — no re-rendering).
    #[must_use]
    pub fn raw_json(status: u16, body: String) -> Self {
        Self {
            status,
            body,
            retry_after: None,
        }
    }

    /// The standard `{"error": code, "detail": detail}` failure body.
    #[must_use]
    pub fn error(status: u16, code: &str, detail: impl Into<String>) -> Self {
        Self::json(
            status,
            &Value::object([
                ("error", Value::Str(code.to_string())),
                ("detail", Value::Str(detail.into())),
            ]),
        )
    }

    /// Attaches a `Retry-After` hint (whole seconds).
    #[must_use]
    pub fn with_retry_after(mut self, secs: u64) -> Self {
        self.retry_after = Some(secs);
        self
    }

    /// Serializes the response (status line, JSON headers,
    /// `Connection: close`, body + newline) onto the stream.
    ///
    /// # Errors
    ///
    /// Propagates socket write errors; the caller just drops the connection.
    pub fn write_to(&self, stream: &mut TcpStream) -> std::io::Result<()> {
        let retry = match self.retry_after {
            Some(secs) => format!("Retry-After: {secs}\r\n"),
            None => String::new(),
        };
        let head = format!(
            "HTTP/1.1 {} {}\r\nContent-Type: application/json\r\nContent-Length: {}\r\n{}Connection: close\r\n\r\n",
            self.status,
            reason(self.status),
            self.body.len() + 1,
            retry,
        );
        stream.write_all(head.as_bytes())?;
        stream.write_all(self.body.as_bytes())?;
        stream.write_all(b"\n")?;
        stream.flush()
    }
}

/// The reason phrase for the status codes the service emits.
#[must_use]
pub fn reason(status: u16) -> &'static str {
    match status {
        200 => "OK",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        413 => "Payload Too Large",
        429 => "Too Many Requests",
        500 => "Internal Server Error",
        503 => "Service Unavailable",
        504 => "Gateway Timeout",
        _ => "Unknown",
    }
}
