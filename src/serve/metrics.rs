//! Service metrics: request/response counters, a fixed-bucket latency
//! histogram, job-queue accounting — everything `GET /metrics` reports,
//! maintained lock-free on atomics.

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

use fetchmech::json::Value;

/// Upper bucket bounds (milliseconds) of the request-latency histogram; a
/// final implicit `+inf` bucket catches the rest.
pub const LATENCY_BUCKETS_MS: [u64; 13] =
    [1, 2, 5, 10, 25, 50, 100, 250, 500, 1000, 2500, 5000, 10000];

/// All service counters. Every field is monotonically increasing except the
/// queue gauges, which are sampled live at render time.
#[derive(Debug, Default)]
pub struct Metrics {
    /// Requests accepted for parsing, by endpoint.
    pub req_simulate: AtomicU64,
    /// `POST /v1/sweep` requests.
    pub req_sweep: AtomicU64,
    /// `POST /v1/programs` requests (frontend uploads).
    pub req_programs: AtomicU64,
    /// `GET /healthz` requests.
    pub req_healthz: AtomicU64,
    /// `GET /metrics` requests.
    pub req_metrics: AtomicU64,
    /// Requests to unknown paths / wrong methods / unreadable requests.
    pub req_other: AtomicU64,

    /// 200 responses.
    pub resp_ok: AtomicU64,
    /// 400 responses (validation / parse failures).
    pub resp_bad_request: AtomicU64,
    /// 404/405 responses.
    pub resp_not_found: AtomicU64,
    /// 413 responses (over the size limits).
    pub resp_too_large: AtomicU64,
    /// 429 responses (admission control shed the request).
    pub resp_shed: AtomicU64,
    /// 500 responses (a job panicked).
    pub resp_internal: AtomicU64,
    /// 503 responses (shutting down / connection limit).
    pub resp_unavailable: AtomicU64,
    /// 504 responses (per-request deadline expired).
    pub resp_deadline: AtomicU64,

    /// Jobs admitted to the bounded queue.
    pub jobs_enqueued: AtomicU64,
    /// Requests that attached to an identical in-flight job instead of
    /// enqueueing a duplicate.
    pub jobs_coalesced: AtomicU64,
    /// Jobs that ran to completion.
    pub jobs_completed: AtomicU64,
    /// Jobs skipped by the between-jobs cancellation check (every waiter
    /// had already given up, or the job deadline had passed).
    pub jobs_expired: AtomicU64,
    /// Jobs refused because the queue was full.
    pub jobs_shed: AtomicU64,
    /// Jobs whose simulation panicked (reported as 500s).
    pub jobs_failed: AtomicU64,

    /// Latency histogram bucket counts for `/v1/simulate` and `/v1/sweep`
    /// (one slot per [`LATENCY_BUCKETS_MS`] entry plus the `+inf` overflow).
    latency_buckets: [AtomicU64; LATENCY_BUCKETS_MS.len() + 1],
    /// Total latency across recorded requests, microseconds.
    latency_sum_micros: AtomicU64,
    /// Recorded requests.
    latency_count: AtomicU64,
}

impl Metrics {
    /// A zeroed metrics block.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one simulate/sweep request latency.
    pub fn record_latency(&self, elapsed: Duration) {
        let ms = u64::try_from(elapsed.as_millis()).unwrap_or(u64::MAX);
        let slot = LATENCY_BUCKETS_MS
            .iter()
            .position(|&le| ms <= le)
            .unwrap_or(LATENCY_BUCKETS_MS.len());
        self.latency_buckets[slot].fetch_add(1, Ordering::Relaxed);
        self.latency_sum_micros.fetch_add(
            u64::try_from(elapsed.as_micros()).unwrap_or(u64::MAX),
            Ordering::Relaxed,
        );
        self.latency_count.fetch_add(1, Ordering::Relaxed);
    }

    /// Bumps the response-class counter for `status`.
    pub fn record_status(&self, status: u16) {
        let counter = match status {
            200 => &self.resp_ok,
            400 => &self.resp_bad_request,
            404 | 405 => &self.resp_not_found,
            413 => &self.resp_too_large,
            429 => &self.resp_shed,
            503 => &self.resp_unavailable,
            504 => &self.resp_deadline,
            _ => &self.resp_internal,
        };
        counter.fetch_add(1, Ordering::Relaxed);
    }

    /// Renders the counters (plus the queue gauges, worker-panic count,
    /// store stats, and lab-cache stats the caller samples) as the
    /// `/metrics` JSON document. `store` is the persistence tier's section
    /// (typically [`crate::store::Store::to_json`], or a
    /// `{"state": "disabled"}` stub when no store is configured).
    #[must_use]
    #[allow(clippy::too_many_arguments)]
    pub fn to_json(
        &self,
        uptime: Duration,
        queue_depth: usize,
        queue_capacity: usize,
        jobs_running: usize,
        workers: usize,
        worker_panics: u64,
        store: &Value,
        lab_cache: &Value,
    ) -> Value {
        let load = |c: &AtomicU64| Value::Uint(c.load(Ordering::Relaxed));
        let count = self.latency_count.load(Ordering::Relaxed);
        let sum_micros = self.latency_sum_micros.load(Ordering::Relaxed);
        #[allow(clippy::cast_precision_loss)]
        let mean_ms = if count == 0 {
            0.0
        } else {
            sum_micros as f64 / count as f64 / 1000.0
        };
        let mut buckets: Vec<Value> = Vec::with_capacity(LATENCY_BUCKETS_MS.len() + 1);
        for (i, le) in LATENCY_BUCKETS_MS.iter().enumerate() {
            buckets.push(Value::object([
                ("le_ms", Value::Uint(*le)),
                ("count", load(&self.latency_buckets[i])),
            ]));
        }
        buckets.push(Value::object([
            ("le_ms", Value::Str("inf".to_string())),
            (
                "count",
                load(&self.latency_buckets[LATENCY_BUCKETS_MS.len()]),
            ),
        ]));

        Value::object([
            ("uptime_secs", Value::Uint(uptime.as_secs())),
            (
                "requests",
                Value::object([
                    ("simulate", load(&self.req_simulate)),
                    ("sweep", load(&self.req_sweep)),
                    ("programs", load(&self.req_programs)),
                    ("healthz", load(&self.req_healthz)),
                    ("metrics", load(&self.req_metrics)),
                    ("other", load(&self.req_other)),
                ]),
            ),
            (
                "responses",
                Value::object([
                    ("ok_200", load(&self.resp_ok)),
                    ("bad_request_400", load(&self.resp_bad_request)),
                    ("not_found_404", load(&self.resp_not_found)),
                    ("too_large_413", load(&self.resp_too_large)),
                    ("shed_429", load(&self.resp_shed)),
                    ("internal_500", load(&self.resp_internal)),
                    ("unavailable_503", load(&self.resp_unavailable)),
                    ("deadline_504", load(&self.resp_deadline)),
                ]),
            ),
            (
                "jobs",
                Value::object([
                    ("enqueued", load(&self.jobs_enqueued)),
                    ("coalesced", load(&self.jobs_coalesced)),
                    ("completed", load(&self.jobs_completed)),
                    ("expired", load(&self.jobs_expired)),
                    ("shed", load(&self.jobs_shed)),
                    ("failed", load(&self.jobs_failed)),
                    ("queue_depth", Value::Uint(queue_depth as u64)),
                    ("queue_capacity", Value::Uint(queue_capacity as u64)),
                    ("running", Value::Uint(jobs_running as u64)),
                    ("workers", Value::Uint(workers as u64)),
                    ("worker_panics", Value::Uint(worker_panics)),
                ]),
            ),
            ("store", store.clone()),
            (
                "latency",
                Value::object([
                    ("count", Value::Uint(count)),
                    ("mean_ms", Value::Num(mean_ms)),
                    ("buckets", Value::Array(buckets)),
                ]),
            ),
            ("lab_cache", lab_cache.clone()),
        ])
    }
}
