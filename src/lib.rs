//! # fetchmech-repro
//!
//! The meta-crate for the `fetchmech` reproduction of Conte, Menezes,
//! Mills & Patel, *"Optimization of Instruction Fetch Mechanisms for High
//! Issue Rates"* (ISCA 1995). It re-exports the [`fetchmech`] core crate
//! (which itself re-exports every substrate) and hosts the workspace-level
//! examples (`examples/`) and cross-crate integration tests (`tests/`).
//!
//! Start at [`fetchmech`]'s crate docs, `README.md`, and `DESIGN.md`.

#![warn(missing_docs)]

pub mod serve;
pub mod store;

pub use fetchmech::*;
