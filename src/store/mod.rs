//! `fetchmech::store` — a crash-safe, append-only on-disk result store.
//!
//! The serve engine memoizes simulation results only in RAM (the `Lab`
//! caches), so every restart re-pays every simulation. This module gives
//! results a durable home:
//!
//! * **Format** — length-prefixed, checksummed records keyed by the
//!   canonical [`SimKey`] string (see the private `log` submodule's docs
//!   for the exact byte layout, summarized in `DESIGN.md` §11).
//! * **Recovery** — opening the store scans the log and *truncates the torn
//!   tail*: a `SIGKILL` mid-record costs exactly the un-synced suffix,
//!   never an older record.
//! * **Concurrency** — single writer (a dedicated persistence thread fed by
//!   a bounded channel: write-behind, off the request path), multi-reader
//!   (an in-memory key → offset index over a shared read handle).
//! * **Fault discipline** — every write and fsync goes through an
//!   [`IoFault`] hook ([`FaultPlan`] is the seeded deterministic schedule),
//!   and a failed append restores the log to its last committed offset
//!   before reporting the fault. Three consecutive failed appends flip the
//!   store into **degraded mode**: persistence stops, lookups keep serving
//!   everything already durable, and `/healthz` + `/metrics` surface the
//!   state — the service never dies with the disk.
//!
//! [`SimKey`]: crate::serve::engine::SimKey

pub mod fault;
mod log;

pub use fault::{FaultAction, FaultPlan, IoFault, NoFault, FAULTS_ENV, FAULT_SEED_ENV};

use std::collections::HashMap;
use std::fs::File;
use std::io::{Error, ErrorKind, Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::mpsc::{sync_channel, Receiver, SyncSender, TrySendError};
use std::sync::{Arc, Mutex, RwLock};
use std::thread::JoinHandle;

use fetchmech::json::Value;

/// Consecutive failed appends before the store gives up and degrades.
const DEGRADE_AFTER: u32 = 3;

/// Retry budget for one record append (covers injected `Interrupted` /
/// `WouldBlock` storms and short-write stutter).
const MAX_WRITE_ATTEMPTS: u32 = 16;

/// Retry budget for one fsync.
const MAX_SYNC_ATTEMPTS: u32 = 4;

/// Live counters for the store, rendered under `"store"` in `/metrics`.
/// Monotonic except `degraded`, which latches once.
#[derive(Debug, Default)]
pub struct StoreStats {
    /// Records durably appended (written + fsynced + indexed).
    pub persisted: AtomicU64,
    /// Persist requests dropped (queue full, degraded mode, or a failed
    /// append that exhausted its retries).
    pub dropped: AtomicU64,
    /// Lookups served from the log.
    pub hits: AtomicU64,
    /// Lookups that missed the index.
    pub misses: AtomicU64,
    /// Write faults observed (injected or real), including retried ones.
    pub write_faults: AtomicU64,
    /// Fsync faults observed (injected or real), including retried ones.
    pub sync_faults: AtomicU64,
    /// Whole records recovered by the opening scan.
    pub records_recovered: AtomicU64,
    /// Torn-tail bytes truncated by the opening scan.
    pub bytes_truncated: AtomicU64,
    /// Latched once persistence has failed hard; lookups continue.
    pub degraded: AtomicBool,
}

impl StoreStats {
    fn bump(&self, counter: &AtomicU64) {
        counter.fetch_add(1, Ordering::Relaxed);
    }
}

/// What [`Store::open`] recovered from an existing log.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RecoveryReport {
    /// Whole records accepted by the scan (including superseded duplicates).
    pub records: u64,
    /// Distinct keys now in the index.
    pub keys: u64,
    /// Torn-tail bytes discarded.
    pub truncated_bytes: u64,
}

enum PersistMsg {
    Record { key: String, body: Arc<String> },
}

/// The crash-safe result store: an append-only log plus an in-memory index.
#[derive(Debug)]
pub struct Store {
    path: PathBuf,
    reader: Mutex<File>,
    index: Arc<RwLock<HashMap<String, (u64, u32)>>>,
    stats: Arc<StoreStats>,
    recovery: RecoveryReport,
    tx: Mutex<Option<SyncSender<PersistMsg>>>,
    writer: Mutex<Option<JoinHandle<()>>>,
}

impl Store {
    /// Opens (creating if absent) the log at `path`, scans it to rebuild the
    /// index, truncates any torn tail, and starts the write-behind
    /// persistence thread. `queue` bounds the persistence backlog —
    /// overflow drops (and counts) requests rather than blocking the
    /// engine. All subsequent writes and fsyncs consult `fault`.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors from opening, scanning, or truncating the log.
    pub fn open(
        path: impl Into<PathBuf>,
        fault: Arc<dyn IoFault>,
        queue: usize,
    ) -> std::io::Result<Store> {
        let path = path.into();
        if let Some(dir) = path.parent().filter(|d| !d.as_os_str().is_empty()) {
            std::fs::create_dir_all(dir)?;
        }
        let mut file = File::options()
            .read(true)
            .write(true)
            .create(true)
            .truncate(false)
            .open(&path)?;
        let total_len = file.metadata()?.len();
        let scan = log::scan(&mut file)?;
        if scan.valid_len < total_len {
            // The torn tail from a mid-record kill: discard it so the next
            // append starts on a record boundary.
            file.set_len(scan.valid_len)?;
            file.sync_data()?;
        }
        file.seek(SeekFrom::Start(scan.valid_len))?;

        let stats = Arc::new(StoreStats::default());
        stats
            .records_recovered
            .store(scan.records, Ordering::Relaxed);
        stats
            .bytes_truncated
            .store(total_len.saturating_sub(scan.valid_len), Ordering::Relaxed);
        let recovery = RecoveryReport {
            records: scan.records,
            keys: scan.index.len() as u64,
            truncated_bytes: total_len.saturating_sub(scan.valid_len),
        };

        let index = Arc::new(RwLock::new(scan.index));
        let reader = File::open(&path)?;
        let (tx, rx) = sync_channel(queue.max(1));
        let writer = {
            let index = Arc::clone(&index);
            let stats = Arc::clone(&stats);
            let committed = scan.valid_len;
            std::thread::Builder::new()
                .name("fetchmech-store".to_string())
                .spawn(move || writer_loop(file, committed, &rx, &index, &stats, &*fault))
                .map_err(|e| Error::other(format!("spawn store writer: {e}")))?
        };

        Ok(Store {
            path,
            reader: Mutex::new(reader),
            index,
            stats,
            recovery,
            tx: Mutex::new(Some(tx)),
            writer: Mutex::new(Some(writer)),
        })
    }

    /// The log's location on disk.
    #[must_use]
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// What the opening scan recovered.
    #[must_use]
    pub fn recovery(&self) -> RecoveryReport {
        self.recovery
    }

    /// The live counters.
    #[must_use]
    pub fn stats(&self) -> &StoreStats {
        &self.stats
    }

    /// Whether persistence has failed hard (lookups still work).
    #[must_use]
    pub fn is_degraded(&self) -> bool {
        self.stats.degraded.load(Ordering::Relaxed)
    }

    /// Distinct keys currently durable.
    #[must_use]
    pub fn len(&self) -> usize {
        self.index.read().expect("store index poisoned").len()
    }

    /// Whether no key is durable yet.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Looks `key` up in the index and reads its body back from the log.
    /// Returns `None` (counting a miss) when the key is unknown — or, defensively,
    /// when the read-back fails, so a surprise I/O error degrades to a cache
    /// miss instead of a 500.
    #[must_use]
    pub fn lookup(&self, key: &str) -> Option<String> {
        let span = {
            let index = self.index.read().expect("store index poisoned");
            index.get(key).copied()
        };
        let Some((offset, len)) = span else {
            self.stats.bump(&self.stats.misses);
            return None;
        };
        match self.read_body(offset, len) {
            Some(body) => {
                self.stats.bump(&self.stats.hits);
                Some(body)
            }
            None => {
                self.stats.bump(&self.stats.misses);
                None
            }
        }
    }

    fn read_body(&self, offset: u64, len: u32) -> Option<String> {
        let mut buf = vec![0u8; len as usize];
        {
            let mut reader = self.reader.lock().expect("store reader poisoned");
            reader.seek(SeekFrom::Start(offset)).ok()?;
            reader.read_exact(&mut buf).ok()?;
        }
        String::from_utf8(buf).ok()
    }

    /// Queues `(key, body)` for write-behind persistence. Never blocks:
    /// when the backlog is full or the store is degraded the request is
    /// dropped and counted — the result stays available from the engine's
    /// in-memory path.
    pub fn persist(&self, key: String, body: &Arc<String>) {
        if self.is_degraded() {
            self.stats.bump(&self.stats.dropped);
            return;
        }
        let tx = self.tx.lock().expect("store tx poisoned");
        let Some(tx) = tx.as_ref() else {
            self.stats.bump(&self.stats.dropped);
            return;
        };
        match tx.try_send(PersistMsg::Record {
            key,
            body: Arc::clone(body),
        }) {
            Ok(()) => {}
            Err(TrySendError::Full(_) | TrySendError::Disconnected(_)) => {
                self.stats.bump(&self.stats.dropped);
            }
        }
    }

    /// Flushes the persistence backlog and joins the writer thread. After
    /// this, every non-dropped `persist` call is durable (or the store is
    /// degraded). Idempotent.
    pub fn shutdown(&self) {
        let tx = self.tx.lock().expect("store tx poisoned").take();
        drop(tx); // writer drains the channel, then exits
        let writer = self.writer.lock().expect("store writer poisoned").take();
        if let Some(handle) = writer {
            let _ = handle.join();
        }
    }

    /// Renders the `"store"` section of `/metrics`.
    #[must_use]
    pub fn to_json(&self) -> Value {
        let load = |c: &AtomicU64| Value::Uint(c.load(Ordering::Relaxed));
        Value::object([
            (
                "state",
                Value::Str(
                    if self.is_degraded() {
                        "degraded"
                    } else {
                        "active"
                    }
                    .to_string(),
                ),
            ),
            ("keys", Value::Uint(self.len() as u64)),
            ("persisted", load(&self.stats.persisted)),
            ("dropped", load(&self.stats.dropped)),
            ("hits", load(&self.stats.hits)),
            ("misses", load(&self.stats.misses)),
            ("write_faults", load(&self.stats.write_faults)),
            ("sync_faults", load(&self.stats.sync_faults)),
            ("records_recovered", load(&self.stats.records_recovered)),
            ("bytes_truncated", load(&self.stats.bytes_truncated)),
        ])
    }
}

impl Drop for Store {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// Why one append didn't commit.
enum AppendError {
    /// The log was restored to its committed length; later appends may
    /// succeed (transient fault or exhausted retry budget).
    Recovered(Error),
    /// The log could not be restored — its tail state is unknown, so the
    /// store must degrade immediately.
    Unrecoverable(Error),
}

fn writer_loop(
    mut file: File,
    mut committed: u64,
    rx: &Receiver<PersistMsg>,
    index: &RwLock<HashMap<String, (u64, u32)>>,
    stats: &StoreStats,
    fault: &dyn IoFault,
) {
    let mut consecutive = 0u32;
    while let Ok(PersistMsg::Record { key, body }) = rx.recv() {
        if stats.degraded.load(Ordering::Relaxed) {
            stats.bump(&stats.dropped);
            continue;
        }
        match append_record(&mut file, committed, &key, &body, stats, fault) {
            Ok(new_committed) => {
                let body_len = u32::try_from(body.len()).expect("body fits u32");
                let body_off = new_committed - u64::from(body_len);
                index
                    .write()
                    .expect("store index poisoned")
                    .insert(key, (body_off, body_len));
                committed = new_committed;
                stats.bump(&stats.persisted);
                consecutive = 0;
            }
            Err(AppendError::Recovered(e)) => {
                stats.bump(&stats.dropped);
                consecutive += 1;
                eprintln!(
                    "fetchmech-store: append failed ({e}); log restored to {committed} bytes \
                     ({consecutive}/{DEGRADE_AFTER} consecutive failures)"
                );
                if consecutive >= DEGRADE_AFTER {
                    degrade(stats, "repeated append failures");
                }
            }
            Err(AppendError::Unrecoverable(e)) => {
                stats.bump(&stats.dropped);
                eprintln!("fetchmech-store: cannot restore log tail ({e})");
                degrade(stats, "log tail unrecoverable");
            }
        }
    }
}

fn degrade(stats: &StoreStats, why: &str) {
    if !stats.degraded.swap(true, Ordering::Relaxed) {
        eprintln!(
            "fetchmech-store: entering degraded in-memory mode ({why}); \
             existing records stay readable, new results are not persisted"
        );
    }
}

/// Appends one record, honoring the fault schedule; on success returns the
/// new committed length. On any failure the log is truncated back to
/// `committed` so it never ends mid-record.
fn append_record(
    file: &mut File,
    committed: u64,
    key: &str,
    body: &str,
    stats: &StoreStats,
    fault: &dyn IoFault,
) -> Result<u64, AppendError> {
    let record = log::encode_record(key, body);
    let tag = key.as_bytes();

    let write_result = write_with_faults(file, &record, tag, stats, fault);
    let result = write_result.and_then(|()| sync_with_faults(file, tag, stats, fault));
    match result {
        Ok(()) => Ok(committed + record.len() as u64),
        Err(e) => {
            // Restore the committed prefix: drop the partial/unsynced record.
            match file
                .set_len(committed)
                .and_then(|()| file.seek(SeekFrom::Start(committed)).map(|_| ()))
                .and_then(|()| file.sync_data())
            {
                Ok(()) => Err(AppendError::Recovered(e)),
                Err(trunc) => Err(AppendError::Unrecoverable(trunc)),
            }
        }
    }
}

fn write_with_faults(
    file: &mut File,
    record: &[u8],
    tag: &[u8],
    stats: &StoreStats,
    fault: &dyn IoFault,
) -> Result<(), Error> {
    let mut written = 0usize;
    for attempt in 0..MAX_WRITE_ATTEMPTS {
        if written == record.len() {
            return Ok(());
        }
        let remaining = &record[written..];
        let take = match fault.on_write(tag, attempt, remaining.len()) {
            FaultAction::Proceed => remaining.len(),
            FaultAction::ShortWrite(n) => {
                stats.bump(&stats.write_faults);
                n.clamp(1, remaining.len())
            }
            FaultAction::Fail(kind) => {
                stats.bump(&stats.write_faults);
                if matches!(kind, ErrorKind::Interrupted | ErrorKind::WouldBlock) {
                    continue; // transient: retry the same bytes
                }
                return Err(Error::new(kind, "injected write fault"));
            }
        };
        match file.write(&remaining[..take]) {
            Ok(n) => written += n,
            Err(e) if e.kind() == ErrorKind::Interrupted => {
                stats.bump(&stats.write_faults);
            }
            Err(e) => {
                stats.bump(&stats.write_faults);
                return Err(e);
            }
        }
    }
    if written == record.len() {
        Ok(())
    } else {
        Err(Error::new(
            ErrorKind::TimedOut,
            format!("write retry budget exhausted after {MAX_WRITE_ATTEMPTS} attempts"),
        ))
    }
}

fn sync_with_faults(
    file: &File,
    tag: &[u8],
    stats: &StoreStats,
    fault: &dyn IoFault,
) -> Result<(), Error> {
    for attempt in 0..MAX_SYNC_ATTEMPTS {
        match fault.on_sync(tag, attempt) {
            FaultAction::Proceed | FaultAction::ShortWrite(_) => {}
            FaultAction::Fail(kind) => {
                stats.bump(&stats.sync_faults);
                if kind == ErrorKind::Interrupted {
                    continue;
                }
                // A failed fsync means the kernel may have dropped the
                // pages: the record cannot be trusted durable.
                return Err(Error::new(kind, "injected fsync fault"));
            }
        }
        return match file.sync_data() {
            Ok(()) => Ok(()),
            Err(e) => {
                stats.bump(&stats.sync_faults);
                Err(e)
            }
        };
    }
    Err(Error::new(
        ErrorKind::TimedOut,
        format!("fsync retry budget exhausted after {MAX_SYNC_ATTEMPTS} attempts"),
    ))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_store(name: &str) -> PathBuf {
        let path = std::env::temp_dir().join(format!(
            "fetchmech-storetest-{}-{name}.log",
            std::process::id()
        ));
        let _ = std::fs::remove_file(&path);
        path
    }

    fn persist_and_wait(store: &Store, key: &str, body: &str, expect_durable: bool) {
        let before = store.stats().persisted.load(Ordering::Relaxed)
            + store.stats().dropped.load(Ordering::Relaxed);
        store.persist(key.to_string(), &Arc::new(body.to_string()));
        let deadline = std::time::Instant::now() + std::time::Duration::from_secs(10);
        loop {
            let persisted = store.stats().persisted.load(Ordering::Relaxed);
            let dropped = store.stats().dropped.load(Ordering::Relaxed);
            if persisted + dropped > before {
                if expect_durable {
                    assert!(
                        store.lookup(key).is_some(),
                        "expected {key} durable (persisted={persisted}, dropped={dropped})"
                    );
                }
                return;
            }
            assert!(
                std::time::Instant::now() < deadline,
                "persist of {key} never settled"
            );
            std::thread::sleep(std::time::Duration::from_millis(2));
        }
    }

    #[test]
    fn persists_and_survives_reopen() {
        let path = temp_store("reopen");
        {
            let store = Store::open(&path, Arc::new(NoFault), 64).expect("open");
            for i in 0..10 {
                persist_and_wait(&store, &format!("key-{i}"), &format!("body-{i}"), true);
            }
            store.shutdown();
        }
        let store = Store::open(&path, Arc::new(NoFault), 64).expect("reopen");
        let report = store.recovery();
        assert_eq!(report.records, 10);
        assert_eq!(report.keys, 10);
        assert_eq!(report.truncated_bytes, 0);
        for i in 0..10 {
            assert_eq!(
                store.lookup(&format!("key-{i}")).as_deref(),
                Some(format!("body-{i}").as_str())
            );
        }
        assert_eq!(store.stats().hits.load(Ordering::Relaxed), 10);
        assert!(store.lookup("absent").is_none());
        assert_eq!(store.stats().misses.load(Ordering::Relaxed), 1);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn reopen_truncates_a_torn_tail_and_keeps_serving() {
        let path = temp_store("torn");
        {
            let store = Store::open(&path, Arc::new(NoFault), 64).expect("open");
            persist_and_wait(&store, "good", "durable-body", true);
            store.shutdown();
        }
        // Simulate a kill mid-append: a partial record at the tail.
        let torn = log::encode_record("torn-key", "torn-body");
        {
            use std::io::Write as _;
            let mut f = File::options().append(true).open(&path).expect("append");
            f.write_all(&torn[..torn.len() - 5]).expect("tear");
        }
        let store = Store::open(&path, Arc::new(NoFault), 64).expect("reopen");
        assert_eq!(store.recovery().records, 1);
        assert_eq!(store.recovery().truncated_bytes, (torn.len() - 5) as u64);
        assert_eq!(store.lookup("good").as_deref(), Some("durable-body"));
        assert!(store.lookup("torn-key").is_none());
        // The truncated log accepts fresh appends cleanly.
        persist_and_wait(&store, "after", "post-recovery", true);
        store.shutdown();
        let store = Store::open(&path, Arc::new(NoFault), 64).expect("re-reopen");
        assert_eq!(store.recovery().records, 2);
        assert_eq!(store.lookup("after").as_deref(), Some("post-recovery"));
        let _ = std::fs::remove_file(&path);
    }

    /// Always hard-fails writes: the store must degrade after the budget,
    /// not panic or corrupt the log.
    #[derive(Debug)]
    struct AlwaysFailWrites;
    impl IoFault for AlwaysFailWrites {
        fn on_write(&self, _t: &[u8], _a: u32, _r: usize) -> FaultAction {
            FaultAction::Fail(ErrorKind::Other)
        }
        fn on_sync(&self, _t: &[u8], _a: u32) -> FaultAction {
            FaultAction::Proceed
        }
    }

    #[test]
    fn hard_write_faults_degrade_but_keep_lookups() {
        let path = temp_store("degrade");
        {
            let store = Store::open(&path, Arc::new(NoFault), 64).expect("open");
            persist_and_wait(&store, "old", "pre-fault", true);
            store.shutdown();
        }
        let store = Store::open(&path, Arc::new(AlwaysFailWrites), 64).expect("reopen");
        for i in 0..DEGRADE_AFTER {
            persist_and_wait(&store, &format!("doomed-{i}"), "x", false);
        }
        // Degradation is latched after DEGRADE_AFTER consecutive failures.
        let deadline = std::time::Instant::now() + std::time::Duration::from_secs(10);
        while !store.is_degraded() {
            assert!(std::time::Instant::now() < deadline, "never degraded");
            std::thread::sleep(std::time::Duration::from_millis(2));
        }
        assert_eq!(store.lookup("old").as_deref(), Some("pre-fault"));
        assert!(store.lookup("doomed-0").is_none());
        assert!(store.stats().write_faults.load(Ordering::Relaxed) >= u64::from(DEGRADE_AFTER));
        // Further persists are dropped without touching the writer.
        store.persist("late".to_string(), &Arc::new("x".to_string()));
        assert!(store.lookup("late").is_none());
        store.shutdown();
        // The log is still clean: reopen recovers the pre-fault record only.
        let store = Store::open(&path, Arc::new(NoFault), 64).expect("re-reopen");
        assert_eq!(store.recovery().records, 1);
        assert_eq!(store.recovery().truncated_bytes, 0);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn seeded_chaos_writes_leave_a_consistent_log() {
        // Transient-heavy schedule: interrupted writes, short writes, and
        // fsync stutter — everything should still commit (the retry budget
        // absorbs transients) or drop cleanly, and the log must reopen with
        // zero truncation.
        let plan = FaultPlan {
            seed: 0xC0FFEE,
            write_err: 0.30,
            short_write: 0.40,
            sync_fail: 0.20,
            ..FaultPlan::default()
        };
        let path = temp_store("chaos");
        let mut durable = Vec::new();
        {
            let store = Store::open(&path, Arc::new(plan), 64).expect("open");
            for i in 0..40 {
                let key = format!("chaos-{i}");
                persist_and_wait(&store, &key, &format!("body-{i}"), false);
                if store.lookup(&key).is_some() {
                    durable.push(i);
                }
            }
            store.shutdown();
        }
        let store = Store::open(&path, Arc::new(NoFault), 64).expect("reopen");
        assert_eq!(
            store.recovery().truncated_bytes,
            0,
            "a failed append must never leave a torn tail"
        );
        for i in &durable {
            assert_eq!(
                store.lookup(&format!("chaos-{i}")).as_deref(),
                Some(format!("body-{i}").as_str()),
                "durable key chaos-{i} lost on reopen"
            );
        }
        assert!(
            !durable.is_empty(),
            "transient faults should not kill every append"
        );
        let _ = std::fs::remove_file(&path);
    }
}
