//! Deterministic I/O fault injection for the result store and the serve
//! engine.
//!
//! Chaos testing is only useful when a failure is *replayable*: the same
//! seed must produce the same faults so a crash found in CI can be rerun
//! locally. To make that hold even under arbitrary thread interleavings,
//! fault decisions here are **stateless**: whether an operation faults is a
//! pure hash of `(seed, domain, operation tag, attempt)`, never a function
//! of global operation order. Two runs that perform the same logical
//! operations see the same faults regardless of scheduling.
//!
//! Two entry points:
//!
//! * [`IoFault`] — the hook trait the store writer consults before every
//!   write and fsync. Tests implement it directly for targeted scenarios
//!   (always-fail, fail-once, …).
//! * [`FaultPlan`] — the seeded rate-based implementation, configurable from
//!   the environment ([`FAULT_SEED_ENV`] / [`FAULTS_ENV`]) so the chaos CI
//!   stage can drive the released binary without code changes. It also
//!   carries the engine-side `sim_panic` rate (deterministic worker-thread
//!   panics).

use std::io::ErrorKind;

/// Environment variable holding the fault-schedule seed (`u64`).
pub const FAULT_SEED_ENV: &str = "FETCHMECH_FAULT_SEED";

/// Environment variable holding the fault rates, e.g.
/// `FETCHMECH_FAULTS=store_write=0.2,store_short_write=0.3,store_sync=0.1,sim_panic=0.05`.
pub const FAULTS_ENV: &str = "FETCHMECH_FAULTS";

/// What an injected fault tells the caller to do for one I/O attempt.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultAction {
    /// No fault: perform the real operation.
    Proceed,
    /// Write at most this many bytes of the remaining buffer (a torn /
    /// partial write). The caller's retry loop continues afterwards.
    ShortWrite(usize),
    /// Fail the attempt with this error kind. `Interrupted` and
    /// `WouldBlock` are transient (callers retry); anything else is hard.
    Fail(ErrorKind),
}

/// The hook the store consults before each low-level I/O operation.
///
/// `tag` identifies the logical operation (the record key for store
/// appends), and `attempt` counts retries of that same operation, so a
/// deterministic implementation can fail attempt 0 and let attempt 1
/// through — exactly the transient-fault shape recovery code must survive.
pub trait IoFault: Send + Sync + std::fmt::Debug {
    /// Consulted before writing (a chunk of) a record; `remaining` is the
    /// number of bytes left to write.
    fn on_write(&self, tag: &[u8], attempt: u32, remaining: usize) -> FaultAction;

    /// Consulted before `fsync`/`fdatasync`.
    fn on_sync(&self, tag: &[u8], attempt: u32) -> FaultAction;
}

/// The no-op plan: every operation proceeds untouched.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NoFault;

impl IoFault for NoFault {
    fn on_write(&self, _tag: &[u8], _attempt: u32, _remaining: usize) -> FaultAction {
        FaultAction::Proceed
    }
    fn on_sync(&self, _tag: &[u8], _attempt: u32) -> FaultAction {
        FaultAction::Proceed
    }
}

/// Fault-decision domains, mixed into the hash so the same tag rolls
/// independently per fault class.
#[derive(Debug, Clone, Copy)]
enum Domain {
    WriteErr = 1,
    ShortWrite = 2,
    SyncFail = 3,
    SimPanic = 4,
}

/// A seeded, rate-based fault schedule.
///
/// Rates are probabilities in `[0, 1]`; a rate of `0` disables that fault
/// class. Decisions are pure functions of `(seed, domain, tag, attempt)` —
/// see the module docs for why.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct FaultPlan {
    /// Schedule seed; the same seed replays the same faults.
    pub seed: u64,
    /// Probability a store write attempt fails with an [`ErrorKind`]
    /// (deterministically one of `Interrupted`, `WouldBlock`, `Other` —
    /// transient kinds are retried by the writer, hard kinds abort the
    /// record).
    pub write_err: f64,
    /// Probability a store write attempt is torn short (partial write).
    pub short_write: f64,
    /// Probability an fsync attempt fails.
    pub sync_fail: f64,
    /// Probability a queued simulation deterministically panics on its
    /// worker thread (exercises the engine's catch-unwind + opaque-500
    /// path).
    pub sim_panic: f64,
}

impl FaultPlan {
    /// Builds the plan from [`FAULTS_ENV`] + [`FAULT_SEED_ENV`]; `None` when
    /// [`FAULTS_ENV`] is unset or names no positive rate. Unknown fault
    /// names warn on stderr and are ignored (a typo must degrade loudly).
    #[must_use]
    pub fn from_env() -> Option<FaultPlan> {
        let spec = std::env::var(FAULTS_ENV).ok()?;
        let seed = std::env::var(FAULT_SEED_ENV)
            .ok()
            .and_then(|s| s.trim().parse().ok())
            .unwrap_or(0xfe7c_4a11);
        let plan = Self::parse(&spec, seed, |msg| eprintln!("warning: {msg}"));
        plan.filter(FaultPlan::is_active)
    }

    /// Parses a `name=rate,name=rate` spec. Pure (warnings go through the
    /// callback) so the policy is unit-testable.
    #[must_use]
    pub fn parse(spec: &str, seed: u64, mut warn: impl FnMut(&str)) -> Option<FaultPlan> {
        let mut plan = FaultPlan {
            seed,
            ..FaultPlan::default()
        };
        let mut any = false;
        for part in spec.split(',') {
            let part = part.trim();
            if part.is_empty() {
                continue;
            }
            let Some((name, rate)) = part.split_once('=') else {
                warn(&format!("{FAULTS_ENV}: ignoring malformed entry {part:?}"));
                continue;
            };
            let Ok(rate) = rate.trim().parse::<f64>() else {
                warn(&format!(
                    "{FAULTS_ENV}: ignoring non-numeric rate in {part:?}"
                ));
                continue;
            };
            let rate = rate.clamp(0.0, 1.0);
            match name.trim() {
                "store_write" => plan.write_err = rate,
                "store_short_write" => plan.short_write = rate,
                "store_sync" => plan.sync_fail = rate,
                "sim_panic" => plan.sim_panic = rate,
                other => {
                    warn(&format!("{FAULTS_ENV}: unknown fault class {other:?}"));
                    continue;
                }
            }
            any = true;
        }
        any.then_some(plan)
    }

    /// Whether any fault class has a positive rate.
    #[must_use]
    pub fn is_active(&self) -> bool {
        self.write_err > 0.0
            || self.short_write > 0.0
            || self.sync_fail > 0.0
            || self.sim_panic > 0.0
    }

    /// Whether the simulation for `tag` (the store key of a [`SimKey`])
    /// should deterministically panic on its worker thread.
    ///
    /// [`SimKey`]: crate::serve::engine::SimKey
    #[must_use]
    pub fn rolls_sim_panic(&self, tag: &str) -> bool {
        fires(
            self.roll(Domain::SimPanic, tag.as_bytes(), 0),
            self.sim_panic,
        )
    }

    /// The decision hash for `(seed, domain, tag, attempt)`.
    fn roll(&self, domain: Domain, tag: &[u8], attempt: u32) -> u64 {
        let mut h = FNV_OFFSET ^ self.seed;
        h = fnv_step(h, &[domain as u8]);
        h = fnv_step(h, tag);
        h = fnv_step(h, &attempt.to_le_bytes());
        // One final avalanche so low rates still see well-mixed high bits.
        h ^= h >> 33;
        h = h.wrapping_mul(0xff51_afd7_ed55_8ccd);
        h ^ (h >> 33)
    }
}

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

fn fnv_step(mut h: u64, bytes: &[u8]) -> u64 {
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(FNV_PRIME);
    }
    h
}

/// Whether a decision hash fires at `rate` (compares the hash's top 53 bits
/// against the rate, so `rate = 1.0` always fires and `0.0` never does).
#[allow(clippy::cast_precision_loss)]
fn fires(hash: u64, rate: f64) -> bool {
    if rate <= 0.0 {
        return false;
    }
    ((hash >> 11) as f64) < rate * ((1u64 << 53) as f64)
}

impl IoFault for FaultPlan {
    fn on_write(&self, tag: &[u8], attempt: u32, remaining: usize) -> FaultAction {
        let err_roll = self.roll(Domain::WriteErr, tag, attempt);
        if fires(err_roll, self.write_err) {
            // Deterministically pick the error kind from spare hash bits:
            // two thirds transient (retryable), one third hard.
            return FaultAction::Fail(match err_roll % 3 {
                0 => ErrorKind::Interrupted,
                1 => ErrorKind::WouldBlock,
                _ => ErrorKind::Other,
            });
        }
        let short_roll = self.roll(Domain::ShortWrite, tag, attempt);
        if remaining > 1 && fires(short_roll, self.short_write) {
            // Tear the write somewhere strictly inside the remaining bytes.
            return FaultAction::ShortWrite(1 + (short_roll as usize) % (remaining - 1));
        }
        FaultAction::Proceed
    }

    fn on_sync(&self, tag: &[u8], attempt: u32) -> FaultAction {
        let roll = self.roll(Domain::SyncFail, tag, attempt);
        if fires(roll, self.sync_fail) {
            return FaultAction::Fail(if roll.is_multiple_of(2) {
                ErrorKind::Interrupted
            } else {
                ErrorKind::Other
            });
        }
        FaultAction::Proceed
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn decisions_are_deterministic_and_seed_sensitive() {
        let a = FaultPlan {
            seed: 7,
            write_err: 0.5,
            ..FaultPlan::default()
        };
        let b = FaultPlan { seed: 8, ..a };
        let pattern = |p: &FaultPlan| -> Vec<bool> {
            (0..64)
                .map(|i| matches!(p.on_write(b"key", i, 100), FaultAction::Fail(_)))
                .collect()
        };
        assert_eq!(pattern(&a), pattern(&a), "same seed must replay");
        assert_ne!(pattern(&a), pattern(&b), "different seeds must differ");
        // Rate 0 never fires; rate 1 always fires.
        let never = FaultPlan {
            seed: 7,
            ..FaultPlan::default()
        };
        let always = FaultPlan {
            seed: 7,
            write_err: 1.0,
            ..FaultPlan::default()
        };
        for i in 0..64 {
            assert_eq!(never.on_write(b"key", i, 100), FaultAction::Proceed);
            assert!(matches!(
                always.on_write(b"key", i, 100),
                FaultAction::Fail(_)
            ));
        }
    }

    #[test]
    fn short_writes_stay_strictly_partial() {
        let plan = FaultPlan {
            seed: 3,
            short_write: 1.0,
            ..FaultPlan::default()
        };
        for remaining in 2..64 {
            match plan.on_write(b"k", 0, remaining) {
                FaultAction::ShortWrite(n) => assert!(n >= 1 && n < remaining, "{n}/{remaining}"),
                other => panic!("expected short write, got {other:?}"),
            }
        }
        // A single remaining byte cannot be torn.
        assert_eq!(plan.on_write(b"k", 0, 1), FaultAction::Proceed);
    }

    #[test]
    fn env_spec_parses_and_warns_on_garbage() {
        let mut warnings = Vec::new();
        let plan = FaultPlan::parse("store_write=0.25, store_sync=0.1,sim_panic=1.5", 42, |m| {
            warnings.push(m.to_string())
        })
        .expect("valid spec");
        assert!((plan.write_err - 0.25).abs() < 1e-12);
        assert!((plan.sync_fail - 0.1).abs() < 1e-12);
        assert!((plan.sim_panic - 1.0).abs() < 1e-12, "rates clamp to [0,1]");
        assert!(warnings.is_empty());

        let mut warnings = Vec::new();
        assert!(
            FaultPlan::parse("bogus=0.5", 1, |m| warnings.push(m.to_string())).is_none(),
            "unknown-only spec yields no plan"
        );
        assert_eq!(warnings.len(), 1);
        assert!(warnings[0].contains("bogus"), "{warnings:?}");

        assert!(FaultPlan::parse("", 1, |_| {}).is_none());
        assert!(FaultPlan::parse("store_write=0.0", 1, |_| {})
            .expect("parses")
            .is_active()
            .eq(&false));
    }
}
