//! The on-disk record format of the result store, and the recovery scanner
//! that rebuilds the in-memory index from a (possibly torn) log.
//!
//! A log is a flat sequence of records, each:
//!
//! ```text
//! offset  size  field
//! 0       4     magic        0x464d5331 ("FMS1"), little-endian
//! 4       4     key length   bytes of the key, LE u32
//! 8       4     body length  bytes of the body, LE u32
//! 12      8     checksum     FNV-1a-64 over key bytes ++ body bytes, LE
//! 20      K     key          UTF-8, the canonical SimKey string
//! 20+K    B     body         UTF-8, the rendered result JSON
//! ```
//!
//! Crash-safety rests on two properties: records are **appended** (never
//! rewritten), and the scanner **truncates at the first invalid record** —
//! a kill mid-write leaves a torn tail (short header, short payload, or a
//! checksum mismatch) which recovery discards, restoring the log to the
//! last fully-durable record. Duplicate keys are legal; the last record
//! wins, so re-running an experiment simply supersedes the old entry.

use std::collections::HashMap;
use std::fs::File;
use std::io::{BufReader, Read};

/// Per-record magic ("FMS1" — fetchmech store, format 1).
pub(crate) const MAGIC: u32 = 0x464d_5331;

/// Fixed bytes before each record's payload.
pub(crate) const HEADER_BYTES: usize = 20;

/// Sanity cap on key length; anything larger marks a corrupt record.
pub(crate) const MAX_KEY_BYTES: u32 = 4 * 1024;

/// Sanity cap on body length; anything larger marks a corrupt record.
pub(crate) const MAX_BODY_BYTES: u32 = 16 * 1024 * 1024;

/// FNV-1a 64 over the concatenation of `parts`.
#[must_use]
pub(crate) fn checksum(parts: &[&[u8]]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for part in parts {
        for &b in *part {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
    }
    h
}

/// Serializes one record (header + payload) into a contiguous buffer, so the
/// writer can append it with as few syscalls as the fault schedule allows.
#[must_use]
pub(crate) fn encode_record(key: &str, body: &str) -> Vec<u8> {
    let key = key.as_bytes();
    let body = body.as_bytes();
    let mut out = Vec::with_capacity(HEADER_BYTES + key.len() + body.len());
    out.extend_from_slice(&MAGIC.to_le_bytes());
    out.extend_from_slice(
        &u32::try_from(key.len())
            .expect("key fits u32")
            .to_le_bytes(),
    );
    out.extend_from_slice(
        &u32::try_from(body.len())
            .expect("body fits u32")
            .to_le_bytes(),
    );
    out.extend_from_slice(&checksum(&[key, body]).to_le_bytes());
    out.extend_from_slice(key);
    out.extend_from_slice(body);
    out
}

/// Where a body lives in the log: `(byte offset, byte length)`.
pub(crate) type BodySpan = (u64, u32);

/// What the recovery scan found.
#[derive(Debug)]
pub(crate) struct ScanOutcome {
    /// Key → span of the *latest* record for that key.
    pub index: HashMap<String, BodySpan>,
    /// Bytes of the log that form whole, checksummed records; everything
    /// past this offset is a torn tail to truncate.
    pub valid_len: u64,
    /// Whole records seen (including superseded duplicates).
    pub records: u64,
}

/// Scans the log from the start, accepting records until the first torn or
/// corrupt one. Never writes; the caller truncates to `valid_len`.
///
/// # Errors
///
/// Only genuine read errors propagate — torn tails, bad magic, oversized
/// lengths, and checksum mismatches all just end the scan.
pub(crate) fn scan(file: &mut File) -> std::io::Result<ScanOutcome> {
    let mut reader = BufReader::new(file);
    let mut index = HashMap::new();
    let mut offset: u64 = 0;
    let mut records: u64 = 0;
    loop {
        let mut header = [0u8; HEADER_BYTES];
        if !read_exact_or_eof(&mut reader, &mut header)? {
            break;
        }
        let magic = u32::from_le_bytes(header[0..4].try_into().expect("4 bytes"));
        let key_len = u32::from_le_bytes(header[4..8].try_into().expect("4 bytes"));
        let body_len = u32::from_le_bytes(header[8..12].try_into().expect("4 bytes"));
        let want = u64::from_le_bytes(header[12..20].try_into().expect("8 bytes"));
        if magic != MAGIC || key_len > MAX_KEY_BYTES || body_len > MAX_BODY_BYTES {
            break;
        }
        let mut payload = vec![0u8; key_len as usize + body_len as usize];
        if !read_exact_or_eof(&mut reader, &mut payload)? {
            break;
        }
        let (key, body) = payload.split_at(key_len as usize);
        if checksum(&[key, body]) != want {
            break;
        }
        let Ok(key) = std::str::from_utf8(key) else {
            break;
        };
        let body_off = offset + HEADER_BYTES as u64 + u64::from(key_len);
        index.insert(key.to_string(), (body_off, body_len));
        offset += (HEADER_BYTES + payload.len()) as u64;
        records += 1;
    }
    Ok(ScanOutcome {
        index,
        valid_len: offset,
        records,
    })
}

/// Fills `buf` exactly, or reports `false` when EOF arrives first (a torn
/// tail). Transient `Interrupted` reads are retried.
fn read_exact_or_eof(reader: &mut impl Read, buf: &mut [u8]) -> std::io::Result<bool> {
    let mut filled = 0;
    while filled < buf.len() {
        match reader.read(&mut buf[filled..]) {
            Ok(0) => return Ok(false),
            Ok(n) => filled += n,
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
            Err(e) => return Err(e),
        }
    }
    Ok(true)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::{Seek, SeekFrom, Write};

    fn temp_log(name: &str) -> std::path::PathBuf {
        let path = std::env::temp_dir().join(format!(
            "fetchmech-logtest-{}-{name}.log",
            std::process::id()
        ));
        let _ = std::fs::remove_file(&path);
        path
    }

    fn write_log(path: &std::path::Path, chunks: &[&[u8]]) -> File {
        let mut f = File::options()
            .read(true)
            .write(true)
            .create(true)
            .truncate(true)
            .open(path)
            .expect("create log");
        for chunk in chunks {
            f.write_all(chunk).expect("write chunk");
        }
        f.seek(SeekFrom::Start(0)).expect("rewind");
        f
    }

    #[test]
    fn roundtrip_and_last_write_wins() {
        let r1 = encode_record("k1", "body-one");
        let r2 = encode_record("k2", "body-two");
        let r3 = encode_record("k1", "body-one-v2");
        let path = temp_log("roundtrip");
        let mut f = write_log(&path, &[&r1, &r2, &r3]);
        let out = scan(&mut f).expect("scan");
        assert_eq!(out.records, 3);
        assert_eq!(out.valid_len, (r1.len() + r2.len() + r3.len()) as u64);
        assert_eq!(out.index.len(), 2);
        let (off, len) = out.index["k1"];
        let mut body = vec![0u8; len as usize];
        f.seek(SeekFrom::Start(off)).expect("seek");
        f.read_exact(&mut body).expect("read body");
        assert_eq!(body, b"body-one-v2", "duplicate key: last record wins");
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn torn_tails_truncate_to_the_last_whole_record() {
        let r1 = encode_record("k1", "alpha");
        let r2 = encode_record("k2", "beta");
        // A kill can tear anywhere: inside the next header, inside the
        // payload, or right after the magic.
        for cut in [3, HEADER_BYTES - 1, HEADER_BYTES + 2, r2.len() - 1] {
            let path = temp_log(&format!("torn-{cut}"));
            let mut f = write_log(&path, &[&r1, &r2[..cut]]);
            let out = scan(&mut f).expect("scan");
            assert_eq!(out.records, 1, "cut at {cut}");
            assert_eq!(out.valid_len, r1.len() as u64, "cut at {cut}");
            assert!(out.index.contains_key("k1"));
            assert!(!out.index.contains_key("k2"));
            let _ = std::fs::remove_file(&path);
        }
    }

    #[test]
    fn corruption_stops_the_scan_at_the_bad_record() {
        let r1 = encode_record("k1", "alpha");
        let mut r2 = encode_record("k2", "beta");
        let r3 = encode_record("k3", "gamma");
        // Flip one payload byte of the middle record: it and everything
        // after it are discarded (append-only logs cannot skip holes).
        let last = r2.len() - 1;
        r2[last] ^= 0x40;
        let path = temp_log("corrupt");
        let mut f = write_log(&path, &[&r1, &r2, &r3]);
        let out = scan(&mut f).expect("scan");
        assert_eq!(out.records, 1);
        assert_eq!(out.valid_len, r1.len() as u64);
        assert_eq!(out.index.len(), 1);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn bad_magic_and_absurd_lengths_are_corruption() {
        let r1 = encode_record("k1", "alpha");
        let mut bogus_magic = encode_record("k2", "beta");
        bogus_magic[0] ^= 0xff;
        let mut bogus_len = encode_record("k3", "gamma");
        bogus_len[4..8].copy_from_slice(&(MAX_KEY_BYTES + 1).to_le_bytes());
        for tail in [&bogus_magic, &bogus_len] {
            let path = temp_log("badhdr");
            let mut f = write_log(&path, &[&r1, tail]);
            let out = scan(&mut f).expect("scan");
            assert_eq!(out.valid_len, r1.len() as u64);
            assert_eq!(out.records, 1);
            let _ = std::fs::remove_file(&path);
        }
    }

    #[test]
    fn empty_log_scans_clean() {
        let path = temp_log("empty");
        let mut f = write_log(&path, &[]);
        let out = scan(&mut f).expect("scan");
        assert_eq!(out.records, 0);
        assert_eq!(out.valid_len, 0);
        assert!(out.index.is_empty());
        let _ = std::fs::remove_file(&path);
    }
}
