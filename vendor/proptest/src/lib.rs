//! Offline shim of the [proptest](https://crates.io/crates/proptest) API.
//!
//! The fetchmech workspace builds in hermetic environments with no access to
//! a crates registry, so the real `proptest` crate cannot be fetched. This
//! crate re-implements the subset of the proptest 1.x surface the workspace
//! test suites use:
//!
//! * [`Strategy`](strategy::Strategy) with `prop_map`, `prop_shuffle`,
//!   `boxed`, and strategies for integer/float ranges, tuples, `Just`,
//!   [`collection::vec`], [`option::of`], and [`arbitrary::any`];
//! * the [`proptest!`], [`prop_compose!`], [`prop_oneof!`],
//!   [`prop_assert!`], [`prop_assert_eq!`], and [`prop_assert_ne!`] macros;
//! * a deterministic [`TestRunner`](test_runner::TestRunner) seeded per test
//!   name, so failures are reproducible run to run.
//!
//! Semantics differ from real proptest in one significant way: **failing
//! cases are not shrunk**. The failing input is reported verbatim.

pub mod strategy;
pub mod test_runner;

/// Strategies generating `Option<T>` values.
pub mod option {
    use crate::strategy::{NewTree, Strategy, TreeOf};
    use crate::test_runner::TestRunner;

    /// Strategy produced by [`of`]: `Some` roughly 80% of the time.
    #[derive(Debug, Clone)]
    pub struct OptionStrategy<S>(S);

    /// Wraps `inner`'s values in `Option`, generating `None` a fraction of
    /// the time.
    pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
        OptionStrategy(inner)
    }

    impl<S: Strategy> Strategy for OptionStrategy<S> {
        type Value = Option<S::Value>;

        fn new_tree(&self, runner: &mut TestRunner) -> NewTree<Self::Value> {
            if runner.next_u64().is_multiple_of(5) {
                Ok(TreeOf::new(None))
            } else {
                Ok(TreeOf::new(Some(self.0.new_tree(runner)?.into_value())))
            }
        }
    }
}

/// Strategies generating collections.
pub mod collection {
    use std::ops::{Range, RangeInclusive};

    use crate::strategy::{NewTree, Strategy, TreeOf};
    use crate::test_runner::TestRunner;

    /// A size constraint for generated collections.
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        min: usize,
        max_excl: usize,
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty collection size range");
            Self {
                min: r.start,
                max_excl: r.end,
            }
        }
    }

    impl From<RangeInclusive<usize>> for SizeRange {
        fn from(r: RangeInclusive<usize>) -> Self {
            Self {
                min: *r.start(),
                max_excl: *r.end() + 1,
            }
        }
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            Self {
                min: n,
                max_excl: n + 1,
            }
        }
    }

    /// Strategy produced by [`vec()`].
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// Generates a `Vec` whose length lies in `size`, with elements drawn
    /// from `element`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn new_tree(&self, runner: &mut TestRunner) -> NewTree<Self::Value> {
            let span = (self.size.max_excl - self.size.min) as u64;
            let len = self.size.min + (runner.next_u64() % span) as usize;
            let mut out = Vec::with_capacity(len);
            for _ in 0..len {
                out.push(self.element.new_tree(runner)?.into_value());
            }
            Ok(TreeOf::new(out))
        }
    }
}

/// The [`Arbitrary`](arbitrary::Arbitrary) trait and [`any`](arbitrary::any).
pub mod arbitrary {
    use crate::strategy::{NewTree, Strategy, TreeOf};
    use crate::test_runner::TestRunner;

    /// Types with a canonical full-range strategy.
    pub trait Arbitrary: Sized {
        /// The strategy [`any`] returns for this type.
        type Strategy: Strategy<Value = Self>;
        /// Returns the canonical strategy.
        fn arbitrary() -> Self::Strategy;
    }

    /// Returns the canonical strategy for `T` (full value range).
    pub fn any<T: Arbitrary>() -> T::Strategy {
        T::arbitrary()
    }

    /// Full-range strategy for a primitive type.
    #[derive(Debug, Clone, Copy)]
    pub struct AnyPrimitive<T>(std::marker::PhantomData<T>);

    macro_rules! arbitrary_int {
        ($($t:ty),* $(,)?) => {$(
            impl Strategy for AnyPrimitive<$t> {
                type Value = $t;
                fn new_tree(&self, runner: &mut TestRunner) -> NewTree<$t> {
                    Ok(TreeOf::new(runner.next_u64() as $t))
                }
            }
            impl Arbitrary for $t {
                type Strategy = AnyPrimitive<$t>;
                fn arbitrary() -> Self::Strategy {
                    AnyPrimitive(std::marker::PhantomData)
                }
            }
        )*};
    }

    arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Strategy for AnyPrimitive<bool> {
        type Value = bool;
        fn new_tree(&self, runner: &mut TestRunner) -> NewTree<bool> {
            Ok(TreeOf::new(runner.next_u64() & 1 == 1))
        }
    }

    impl Arbitrary for bool {
        type Strategy = AnyPrimitive<bool>;
        fn arbitrary() -> Self::Strategy {
            AnyPrimitive(std::marker::PhantomData)
        }
    }
}

/// The glob-import module mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate::arbitrary::{any, Arbitrary};
    pub use crate::strategy::{BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::{Config as ProptestConfig, TestCaseError, TestRunner};
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_compose, prop_oneof, proptest,
    };
    /// Namespace alias so `prop::collection::vec(...)` style paths work.
    pub mod prop {
        pub use crate::collection;
        pub use crate::option;
    }
}

/// Defines property tests.
///
/// ```text
/// use proptest::prelude::*;
///
/// proptest! {
///     #[test]
///     fn addition_commutes(a in 0u32..1000, b in 0u32..1000) {
///         prop_assert_eq!(a + b, b + a);
///     }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    (
        #![proptest_config($config:expr)]
        $($rest:tt)*
    ) => {
        $crate::__proptest_tests! { config = $config; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_tests! {
            config = $crate::test_runner::Config::default();
            $($rest)*
        }
    };
}

/// Implementation detail of [`proptest!`].
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_tests {
    (
        config = $config:expr;
        $(
            $(#[$meta:meta])*
            fn $name:ident($($arg:pat_param in $strat:expr),+ $(,)?) $body:block
        )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::test_runner::Config = $config;
                let mut runner = $crate::test_runner::TestRunner::new_with_name(
                    config,
                    concat!(module_path!(), "::", stringify!($name)),
                );
                let strategy = ($($strat,)+);
                let result = runner.run(
                    &strategy,
                    |($($arg,)+)| -> ::std::result::Result<(), $crate::test_runner::TestCaseError> {
                        $body
                        ::std::result::Result::Ok(())
                    },
                );
                if let ::std::result::Result::Err(err) = result {
                    ::std::panic!("{}", err);
                }
            }
        )*
    };
}

/// Defines a named strategy function by composing argument strategies.
///
/// Only the `fn name(outer)(arg in strat, ...) -> Type { body }` form is
/// supported.
#[macro_export]
macro_rules! prop_compose {
    (
        $(#[$meta:meta])*
        $vis:vis fn $name:ident($($outer:tt)*)
            ($($arg:pat_param in $strat:expr),+ $(,)?)
            -> $ret:ty $body:block
    ) => {
        $(#[$meta])*
        $vis fn $name($($outer)*) -> impl $crate::strategy::Strategy<Value = $ret> {
            $crate::strategy::Strategy::prop_map(
                ($($strat,)+),
                move |($($arg,)+)| $body,
            )
        }
    };
}

/// Picks uniformly among the given strategies (weights unsupported).
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(::std::vec![
            $($crate::strategy::Strategy::boxed($strat)),+
        ])
    };
}

/// Fails the current test case with a message unless the condition holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                ::std::format!(
                    "assertion failed: {} ({}:{})",
                    ::std::stringify!($cond),
                    ::std::file!(),
                    ::std::line!()
                ),
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                ::std::format!($($fmt)+),
            ));
        }
    };
}

/// Fails the current test case unless the two expressions are equal.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            *left == *right,
            "assertion failed: `{} == {}`\n  left: `{:?}`\n right: `{:?}` ({}:{})",
            ::std::stringify!($left),
            ::std::stringify!($right),
            left,
            right,
            ::std::file!(),
            ::std::line!()
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            *left == *right,
            "{}\n  left: `{:?}`\n right: `{:?}`",
            ::std::format!($($fmt)+),
            left,
            right
        );
    }};
}

/// Fails the current test case if the two expressions are equal.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            *left != *right,
            "assertion failed: `{} != {}`\n  both: `{:?}` ({}:{})",
            ::std::stringify!($left),
            ::std::stringify!($right),
            left,
            ::std::file!(),
            ::std::line!()
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            *left != *right,
            "{}\n  both: `{:?}`",
            ::std::format!($($fmt)+),
            left
        );
    }};
}
