//! The deterministic test runner.

use std::fmt;

use crate::strategy::{Strategy, ValueTree};

/// The reason a strategy failed to produce a value.
pub type Reason = String;

/// Per-test configuration (mirrors `proptest::test_runner::Config`).
#[derive(Debug, Clone)]
pub struct Config {
    /// Number of random cases to run per test.
    pub cases: u32,
}

impl Config {
    /// Returns a config running `cases` cases per test.
    pub fn with_cases(cases: u32) -> Self {
        Self { cases }
    }
}

impl Default for Config {
    fn default() -> Self {
        Self { cases: 256 }
    }
}

/// A failure raised inside one test case (by the `prop_assert*` macros).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TestCaseError {
    /// The case found a counterexample.
    Fail(String),
    /// The case asked to be discarded (unsupported filter path).
    Reject(String),
}

impl TestCaseError {
    /// Creates a failure with the given message.
    pub fn fail(reason: impl Into<String>) -> Self {
        Self::Fail(reason.into())
    }

    /// Creates a rejection with the given message.
    pub fn reject(reason: impl Into<String>) -> Self {
        Self::Reject(reason.into())
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TestCaseError::Fail(m) => write!(f, "{m}"),
            TestCaseError::Reject(m) => write!(f, "rejected: {m}"),
        }
    }
}

/// A whole-test failure: the case number, input, and inner error.
#[derive(Debug, Clone)]
pub struct TestError {
    name: String,
    case: u32,
    input: String,
    error: TestCaseError,
}

impl fmt::Display for TestError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "proptest {}: case {} failed (no shrinking in offline shim)\n\
             input: {}\n{}",
            self.name, self.case, self.input, self.error
        )
    }
}

impl std::error::Error for TestError {}

/// Runs strategies against a test closure with a deterministic RNG.
///
/// The RNG is seeded from the test name, so every run of a given test
/// explores the same case sequence (reproducible without persistence files).
#[derive(Debug, Clone)]
pub struct TestRunner {
    config: Config,
    name: String,
    state: u64,
}

impl TestRunner {
    /// Creates a runner with the given config and a fixed default seed.
    pub fn new(config: Config) -> Self {
        Self::new_with_name(config, "proptest")
    }

    /// Creates a runner seeded from `name`.
    pub fn new_with_name(config: Config, name: &str) -> Self {
        let mut seed = 0xcbf2_9ce4_8422_2325u64;
        for b in name.bytes() {
            seed ^= u64::from(b);
            seed = seed.wrapping_mul(0x0000_0100_0000_01b3);
        }
        Self {
            config,
            name: name.to_string(),
            state: seed,
        }
    }

    /// Creates a default-config runner with a fixed seed.
    pub fn deterministic() -> Self {
        Self::new(Config::default())
    }

    /// Returns the next raw 64-bit random value (splitmix64).
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Runs `test` against `config.cases` values drawn from `strategy`.
    ///
    /// # Errors
    ///
    /// Returns the first failing case (the input is reported verbatim — this
    /// shim does not shrink).
    pub fn run<S, F>(&mut self, strategy: &S, mut test: F) -> Result<(), TestError>
    where
        S: Strategy,
        S::Value: Clone + fmt::Debug,
        F: FnMut(S::Value) -> Result<(), TestCaseError>,
    {
        for case in 0..self.config.cases {
            let tree = match strategy.new_tree(self) {
                Ok(t) => t,
                Err(reason) => {
                    return Err(TestError {
                        name: self.name.clone(),
                        case,
                        input: "<generation failed>".to_string(),
                        error: TestCaseError::fail(reason),
                    })
                }
            };
            let value = tree.current();
            match test(value.clone()) {
                Ok(()) | Err(TestCaseError::Reject(_)) => {}
                Err(err @ TestCaseError::Fail(_)) => {
                    return Err(TestError {
                        name: self.name.clone(),
                        case,
                        input: format!("{value:#?}"),
                        error: err,
                    });
                }
            }
        }
        Ok(())
    }
}
