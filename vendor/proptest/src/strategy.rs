//! Value-generation strategies.

use std::ops::{Range, RangeInclusive};

use crate::test_runner::{Reason, TestRunner};

/// Result of instantiating one generated value.
pub type NewTree<T> = Result<TreeOf<T>, Reason>;

/// A generated value, packaged to mirror proptest's `ValueTree`.
///
/// Real proptest trees support binary-search shrinking; this shim's trees
/// hold a single already-generated value and never shrink.
#[derive(Debug, Clone)]
pub struct TreeOf<T> {
    value: T,
}

impl<T> TreeOf<T> {
    /// Wraps a generated value.
    pub fn new(value: T) -> Self {
        Self { value }
    }

    /// Unwraps the generated value.
    pub fn into_value(self) -> T {
        self.value
    }
}

/// The value-tree interface (`current`/`simplify`/`complicate`).
pub trait ValueTree {
    /// The type of value this tree yields.
    type Value;
    /// Returns the current value.
    fn current(&self) -> Self::Value;
    /// Attempts to shrink; this shim never shrinks.
    fn simplify(&mut self) -> bool {
        false
    }
    /// Attempts to un-shrink; this shim never shrinks.
    fn complicate(&mut self) -> bool {
        false
    }
}

impl<T: Clone> ValueTree for TreeOf<T> {
    type Value = T;

    fn current(&self) -> T {
        self.value.clone()
    }
}

/// A source of generated values.
pub trait Strategy {
    /// The type of value this strategy generates.
    type Value;

    /// Generates one value using the runner's RNG.
    fn new_tree(&self, runner: &mut TestRunner) -> NewTree<Self::Value>;

    /// Maps generated values through `f`.
    fn prop_map<T, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> T,
    {
        Map { inner: self, f }
    }

    /// Randomly permutes generated collections.
    fn prop_shuffle(self) -> Shuffle<Self>
    where
        Self: Sized,
    {
        Shuffle(self)
    }

    /// Erases the strategy type.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        Box::new(self)
    }
}

/// A type-erased strategy.
pub type BoxedStrategy<T> = Box<dyn Strategy<Value = T>>;

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;

    fn new_tree(&self, runner: &mut TestRunner) -> NewTree<T> {
        (**self).new_tree(runner)
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;

    fn new_tree(&self, runner: &mut TestRunner) -> NewTree<Self::Value> {
        (**self).new_tree(runner)
    }
}

/// Always generates a clone of the given value.
#[derive(Debug, Clone, Copy)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn new_tree(&self, _runner: &mut TestRunner) -> NewTree<T> {
        Ok(TreeOf::new(self.0.clone()))
    }
}

/// Strategy returned by [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, F, T> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> T,
{
    type Value = T;

    fn new_tree(&self, runner: &mut TestRunner) -> NewTree<T> {
        Ok(TreeOf::new((self.f)(
            self.inner.new_tree(runner)?.into_value(),
        )))
    }
}

/// Strategy returned by [`Strategy::prop_shuffle`].
#[derive(Debug, Clone)]
pub struct Shuffle<S>(S);

impl<S, T> Strategy for Shuffle<S>
where
    S: Strategy<Value = Vec<T>>,
{
    type Value = Vec<T>;

    fn new_tree(&self, runner: &mut TestRunner) -> NewTree<Vec<T>> {
        let mut v = self.0.new_tree(runner)?.into_value();
        for i in (1..v.len()).rev() {
            let j = (runner.next_u64() % (i as u64 + 1)) as usize;
            v.swap(i, j);
        }
        Ok(TreeOf::new(v))
    }
}

/// Uniform choice among boxed strategies (the [`prop_oneof!`](crate::prop_oneof)
/// backing type).
pub struct Union<T> {
    options: Vec<BoxedStrategy<T>>,
}

impl<T> std::fmt::Debug for Union<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Union")
            .field("options", &self.options.len())
            .finish()
    }
}

impl<T> Union<T> {
    /// Creates a union over the given non-empty option list.
    pub fn new(options: Vec<BoxedStrategy<T>>) -> Self {
        assert!(!options.is_empty(), "prop_oneof! needs at least one option");
        Self { options }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;

    fn new_tree(&self, runner: &mut TestRunner) -> NewTree<T> {
        let idx = (runner.next_u64() % self.options.len() as u64) as usize;
        self.options[idx].new_tree(runner)
    }
}

macro_rules! int_range_strategies {
    ($($t:ty),* $(,)?) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn new_tree(&self, runner: &mut TestRunner) -> NewTree<$t> {
                if self.start >= self.end {
                    return Err(format!("empty range {:?}", self));
                }
                let span = (self.end as i128 - self.start as i128) as u128;
                let off = (runner.next_u64() as u128 % span) as i128;
                Ok(TreeOf::new((self.start as i128 + off) as $t))
            }
        }

        impl Strategy for RangeInclusive<$t> {
            type Value = $t;

            fn new_tree(&self, runner: &mut TestRunner) -> NewTree<$t> {
                if self.start() > self.end() {
                    return Err(format!("empty range {:?}", self));
                }
                let span = (*self.end() as i128 - *self.start() as i128) as u128 + 1;
                let off = (runner.next_u64() as u128 % span) as i128;
                Ok(TreeOf::new((*self.start() as i128 + off) as $t))
            }
        }
    )*};
}

int_range_strategies!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! float_range_strategies {
    ($($t:ty),* $(,)?) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn new_tree(&self, runner: &mut TestRunner) -> NewTree<$t> {
                if self.start.partial_cmp(&self.end) != Some(core::cmp::Ordering::Less) {
                    return Err(format!("empty range {:?}", self));
                }
                let unit = (runner.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
                Ok(TreeOf::new(self.start + (self.end - self.start) * unit as $t))
            }
        }
    )*};
}

float_range_strategies!(f32, f64);

macro_rules! tuple_strategies {
    ($(($($S:ident . $idx:tt),+))+) => {$(
        impl<$($S: Strategy),+> Strategy for ($($S,)+) {
            type Value = ($($S::Value,)+);

            fn new_tree(&self, runner: &mut TestRunner) -> NewTree<Self::Value> {
                Ok(TreeOf::new(($(self.$idx.new_tree(runner)?.into_value(),)+)))
            }
        }
    )+};
}

tuple_strategies! {
    (S0.0)
    (S0.0, S1.1)
    (S0.0, S1.1, S2.2)
    (S0.0, S1.1, S2.2, S3.3)
    (S0.0, S1.1, S2.2, S3.3, S4.4)
    (S0.0, S1.1, S2.2, S3.3, S4.4, S5.5)
    (S0.0, S1.1, S2.2, S3.3, S4.4, S5.5, S6.6)
    (S0.0, S1.1, S2.2, S3.3, S4.4, S5.5, S6.6, S7.7)
    (S0.0, S1.1, S2.2, S3.3, S4.4, S5.5, S6.6, S7.7, S8.8)
    (S0.0, S1.1, S2.2, S3.3, S4.4, S5.5, S6.6, S7.7, S8.8, S9.9)
}
