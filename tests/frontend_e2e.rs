//! End-to-end tests for the external-program frontend: every checked-in
//! example under `examples/programs/` parses, lowers to a valid program,
//! generates traces on both the per-instruction and block-stream paths,
//! profiles with clean flow conservation, survives the optimizer's
//! translation validation, and simulates on every fetch scheme. Plus:
//! content-hash determinism and stable error-path diagnostics.

use std::sync::Arc;

use fetchmech::compiler::{optimize, OptimizeConfig, PassKind, Profile};
use fetchmech::isa::{Layout, LayoutOptions};
use fetchmech::pipeline::MachineModel;
use fetchmech::workloads::{InputId, Workload, WorkloadSpec};
use fetchmech::{simulate, SchemeKind};
use fetchmech_analysis::{has_errors, verify_optimized, verify_profile, verify_program, Severity};
use fetchmech_frontend::{parse, Format};

/// Every checked-in example program, with a static workload name.
const EXAMPLES: [(&str, Format, &str); 5] = [
    (
        "e2e-loopmix",
        Format::Bril,
        include_str!("../examples/programs/loopmix.bril.json"),
    ),
    (
        "e2e-branchy-bril",
        Format::Bril,
        include_str!("../examples/programs/branchy.bril.json"),
    ),
    (
        "e2e-callgraph",
        Format::Bril,
        include_str!("../examples/programs/callgraph.bril.json"),
    ),
    (
        "e2e-kernel",
        Format::Wat,
        include_str!("../examples/programs/kernel.wat"),
    ),
    (
        "e2e-branchy-wat",
        Format::Wat,
        include_str!("../examples/programs/branchy.wat"),
    ),
];

/// Short traces keep debug-mode runs (which execute the full cycle-level
/// sanitizer and the block-stream differential oracle) fast.
const INSTS: u64 = 4_000;

fn workload(name: &'static str, format: Format, src: &str) -> Workload {
    let lowered = parse(format, src).unwrap_or_else(|e| panic!("{name}: {e}"));
    Workload {
        spec: WorkloadSpec::external(name, 0x5eed ^ name.len() as u64),
        program: lowered.program,
        behaviors: lowered.behaviors,
    }
}

fn natural_layout(w: &Workload, machine: &MachineModel) -> Layout {
    Layout::natural(&w.program, LayoutOptions::new(machine.block_bytes)).expect("natural layout")
}

#[test]
fn examples_lower_to_valid_programs_and_retire_on_every_scheme() {
    let machine = MachineModel::p14();
    for (name, format, src) in EXAMPLES {
        let w = workload(name, format, src);
        let diags = verify_program(&w.program);
        assert!(
            !has_errors(&diags),
            "{name}: lowered program fails default lint rules: {diags:?}"
        );
        let layout = natural_layout(&w, &machine);
        let trace: Vec<_> = w.executor(&layout, InputId::TEST, INSTS).collect();
        assert_eq!(trace.len() as u64, INSTS, "{name}: trace truncated");
        for scheme in SchemeKind::ALL {
            let r = simulate(&machine, scheme, trace.clone());
            assert_eq!(r.retired, INSTS, "{name} on {scheme}: not all retired");
            assert!(r.ipc() > 0.0, "{name} on {scheme}: zero IPC");
        }
    }
}

#[test]
fn block_stream_fast_path_matches_per_instruction_path() {
    // The lowered programs must drive the PR-8 fast path unchanged; in
    // debug builds `simulate` additionally runs the differential oracle
    // against the sanitized per-instruction reference.
    let machine = MachineModel::p14();
    for (name, format, src) in EXAMPLES {
        let w = workload(name, format, src);
        let layout = natural_layout(&w, &machine);
        let trace: Vec<_> = w.executor(&layout, InputId::TEST, INSTS).collect();
        let stream = Arc::new(w.block_stream(&layout, InputId::TEST, INSTS));
        for scheme in SchemeKind::ALL {
            let reference = simulate(&machine, scheme, trace.clone());
            let fast = simulate(&machine, scheme, Arc::clone(&stream));
            assert_eq!(reference, fast, "{name} on {scheme}: paths diverge");
        }
    }
}

#[test]
fn example_profiles_conserve_flow() {
    for (name, format, src) in EXAMPLES {
        let w = workload(name, format, src);
        let profile = Profile::collect(&w, &InputId::PROFILE, INSTS);
        let diags = verify_profile(&w.program, &profile, None);
        assert!(
            !has_errors(&diags),
            "{name}: profile fails flow conservation: {diags:?}"
        );
    }
}

#[test]
fn examples_survive_the_full_optimizer_with_translation_validation() {
    for (name, format, src) in EXAMPLES {
        let w = workload(name, format, src);
        let profile = Profile::collect(&w, &InputId::PROFILE, INSTS);
        let optimized = optimize(
            &w.program,
            &profile,
            &PassKind::ALL,
            &OptimizeConfig::default(),
        );
        let diags = verify_optimized(&w, &profile, &optimized, INSTS);
        assert!(
            !has_errors(&diags),
            "{name}: translation validation failed: {diags:?}"
        );
    }
}

#[test]
fn fingerprints_are_deterministic_and_distinct() {
    let mut seen = Vec::new();
    for (name, format, src) in EXAMPLES {
        let a = parse(format, src).expect(name).fingerprint();
        let b = parse(format, src).expect(name).fingerprint();
        assert_eq!(a, b, "{name}: fingerprint must be deterministic");
        assert!(
            !seen.contains(&a),
            "{name}: fingerprint collides with another example"
        );
        seen.push(a);
    }
}

#[test]
fn dump_names_every_qualified_label() {
    for (name, format, src) in EXAMPLES {
        let lowered = parse(format, src).expect(name);
        let dump = fetchmech_frontend::dump(&lowered);
        for label in lowered.labels.keys() {
            assert!(
                dump.contains(&format!("{label}:")),
                "{name}: dump misses label {label}"
            );
        }
    }
}

#[test]
fn bril_error_paths_have_stable_diagnostics() {
    let cases: [(&str, &str); 4] = [
        (r#"{"functions": []}"#, "\"functions\" must not be empty"),
        (
            r#"{"functions": [{"name": "main", "instrs": [
                {"op": "frobnicate"},
                {"op": "ret"}
            ]}]}"#,
            "unknown op \"frobnicate\"",
        ),
        (
            r#"{"functions": [{"name": "main", "instrs": [
                {"op": "add", "dest": "x", "args": ["x", "y"]},
                {"op": "ret"}
            ]}]}"#,
            "undefined variable",
        ),
        (
            r#"{"functions": [{"name": "main", "instrs": [
                {"op": "const", "dest": "c", "value": 1},
                {"op": "br", "args": ["c"], "labels": ["nowhere", "also"]},
                {"label": "also"},
                {"op": "ret"}
            ]}]}"#,
            "nowhere",
        ),
    ];
    for (src, needle) in cases {
        let e = parse(Format::Bril, src).expect_err("must be rejected");
        assert!(e.to_string().contains(needle), "missing {needle:?} in: {e}");
    }
    // Instruction coordinates survive to the message.
    let e = parse(
        Format::Bril,
        r#"{"functions": [{"name": "main", "instrs": [{"op": "frobnicate"}]}]}"#,
    )
    .expect_err("must be rejected");
    assert!(
        e.to_string().contains("function \"main\", instruction 0"),
        "missing coordinates in: {e}"
    );
}

#[test]
fn wat_error_paths_have_stable_line_numbered_diagnostics() {
    // Folded expressions are rejected with a how-to-fix hint.
    let folded =
        "(module\n  (func $main\n    (i32.add (i32.const 1) (i32.const 2))\n    return\n  )\n)";
    let e = parse(Format::Wat, folded).expect_err("folded must be rejected");
    let msg = e.to_string();
    assert!(
        msg.contains("folded expressions are not supported"),
        "{msg}"
    );
    assert!(msg.starts_with("line 3:"), "wrong line in: {msg}");

    // Branching to a label with no enclosing frame.
    let stray = "(module\n  (func $main\n    i32.const 1\n    br_if $nowhere\n    return\n  )\n)";
    let e = parse(Format::Wat, stray).expect_err("stray br_if must be rejected");
    let msg = e.to_string();
    assert!(
        msg.contains("no enclosing block/loop labeled $nowhere"),
        "{msg}"
    );
    assert!(msg.starts_with("line 4:"), "wrong line in: {msg}");

    // An annotation with nothing to attach to.
    let orphan = "(module\n  (func $main\n    ;; @p=0.5\n    return\n  )\n)";
    let e = parse(Format::Wat, orphan).expect_err("orphan annotation must be rejected");
    assert!(
        e.to_string()
            .contains("behaviour annotation with no preceding br_if"),
        "{e}"
    );
}

#[test]
fn lowered_programs_produce_no_error_severity_diagnostics_anywhere() {
    // Belt-and-braces over the whole default registry: program, layout, and
    // profile targets together (the same gauntlet `fetchmech-lint frontend`
    // runs), asserting not a single Error-severity diagnostic.
    let machine = MachineModel::p14();
    for (name, format, src) in EXAMPLES {
        let w = workload(name, format, src);
        let layout = natural_layout(&w, &machine);
        let profile = Profile::collect(&w, &InputId::PROFILE, INSTS);
        let mut diags = verify_program(&w.program);
        diags.extend(fetchmech_analysis::verify_layout(&w.program, &layout));
        diags.extend(verify_profile(&w.program, &profile, None));
        let errors: Vec<_> = diags
            .iter()
            .filter(|d| d.severity == Severity::Error)
            .collect();
        assert!(errors.is_empty(), "{name}: {errors:?}");
    }
}
