//! The paper's headline qualitative claims, checked end-to-end on reduced
//! trace lengths. (The `report` binary regenerates the full tables; these
//! tests pin the *shape* so regressions are caught by `cargo test`.)

use fetchmech::experiments::{ExpConfig, Fig10, Fig12, Fig3, Fig9, Lab, Table2, Table3, Table4};
use fetchmech::workloads::WorkloadClass;
use fetchmech::SchemeKind;

fn lab() -> Lab {
    Lab::new(ExpConfig::quick())
}

#[test]
fn claim_better_fetching_is_needed_at_high_issue_rates() {
    // Figure 3: the sequential-vs-perfect gap grows with issue rate for
    // integer code and is smallest for FP on P14.
    let fig = Fig3::run(&lab());
    let int = fig.class_rows(WorkloadClass::Int);
    assert!(int[0].headroom() < int[2].headroom());
    for r in &fig.rows {
        assert!(r.perfect > r.sequential);
    }
}

#[test]
fn claim_intra_block_branches_grow_with_block_size() {
    // Table 2: the phenomenon that motivates the collapsing buffer.
    let t = Table2::run(&lab());
    let grew = t.rows.iter().filter(|r| r.pct[2] > r.pct[0] + 5.0).count();
    assert!(grew >= 10, "only {grew}/15 benchmarks grew substantially");
    // Integer codes dominate at small blocks.
    let int_mean: f64 = t
        .rows
        .iter()
        .filter(|r| r.class == WorkloadClass::Int)
        .map(|r| r.pct[0])
        .sum::<f64>()
        / 9.0;
    let fp_wo_outliers: f64 = t
        .rows
        .iter()
        .filter(|r| r.class == WorkloadClass::Fp)
        .map(|r| r.pct[0])
        .sum::<f64>()
        / 6.0;
    assert!(
        int_mean > 0.5 * fp_wo_outliers,
        "int {int_mean} vs fp {fp_wo_outliers}"
    );
}

#[test]
fn claim_collapsing_buffer_is_the_most_robust_scheme() {
    // Figure 9 ordering plus Figure 10 scalability in one pass.
    let lab = lab();
    let fig9 = Fig9::run(&lab);
    for r in &fig9.rows {
        let coll = r.ipc_of(SchemeKind::CollapsingBuffer);
        for other in [
            SchemeKind::Sequential,
            SchemeKind::InterleavedSequential,
            SchemeKind::BankedSequential,
        ] {
            assert!(
                coll >= r.ipc_of(other) - 0.03,
                "{} {:?}: collapsing {} < {} {}",
                r.machine,
                r.class,
                coll,
                other,
                r.ipc_of(other)
            );
        }
    }
    let fig10 = Fig10::run(&lab);
    for class in [WorkloadClass::Int, WorkloadClass::Fp] {
        let series = fig10.series(SchemeKind::CollapsingBuffer, class);
        // "consistently aligns instructions in excess of 90% of the time,
        // over a wide range of issue rates" — allow a little slack for the
        // reduced test config.
        for (i, v) in series.iter().enumerate() {
            assert!(*v >= 85.0, "{class:?} machine #{i}: collapsing ratio {v}");
        }
    }
}

#[test]
fn claim_sequential_decays_with_issue_rate() {
    // Figure 10: the other schemes decrease in relative efficiency from P14
    // to P112.
    let fig = Fig10::run(&lab());
    for class in [WorkloadClass::Int, WorkloadClass::Fp] {
        let seq = fig.series(SchemeKind::Sequential, class);
        assert!(
            seq[2] < seq[0] - 5.0,
            "{class:?}: sequential ratio should decay, got {seq:?}"
        );
    }
}

#[test]
fn claim_reordering_significantly_enhances_all_schemes() {
    let lab = lab();
    let fig12 = Fig12::run(&lab);
    for r in &fig12.rows {
        assert!(r.reordered_of(SchemeKind::Sequential) > r.sequential_unordered);
        // "when collapsing buffer is used with reordering, it nearly matches
        // the performance of perfect(reordered)".
        assert!(
            r.reordered_of(SchemeKind::CollapsingBuffer)
                > 0.88 * r.reordered_of(SchemeKind::Perfect)
        );
    }
    let t3 = Table3::run(&lab);
    let mean: f64 = t3.rows.iter().map(|r| r.reduction_pct()).sum::<f64>() / t3.rows.len() as f64;
    assert!(
        mean > 15.0,
        "mean taken-branch reduction {mean:.1}% below the paper's ballpark"
    );
}

#[test]
fn claim_pad_trace_is_a_cheap_refinement_and_pad_all_is_not() {
    let t4 = Table4::run(&lab());
    for r in &t4.rows {
        // "Pad-trace introduces significantly less nops than pad-all."
        for i in 0..3 {
            assert!(
                r.pad_trace[i] < r.pad_all[i] * 0.6,
                "{}[{i}]: pad-trace {:.1}% vs pad-all {:.1}%",
                r.bench,
                r.pad_trace[i],
                r.pad_all[i]
            );
        }
        // "pad-all appears to be unjustified ... its benefit is more than
        // offset by code expansion" — expansion beyond 100% at 64 B.
        assert!(r.pad_all[2] > 100.0, "{}: {:?}", r.bench, r.pad_all);
    }
}
