//! Race-focused integration tests for `fetchmech::runner::JobQueue`: the
//! shutdown/cancel edges the serve layer depends on. Every test is
//! deterministic in its *assertions* (exact accounting, bounded waits) even
//! where thread interleavings vary.

use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::thread;
use std::time::{Duration, Instant};

use fetchmech::runner::{JobQueue, QueueJob, Runner, SubmitError};

/// A counting job: records whether it ran or was skipped, optionally
/// sleeping or panicking first.
#[derive(Debug)]
struct Job {
    id: usize,
    cancel: Arc<AtomicBool>,
    ran: Arc<Mutex<Vec<usize>>>,
    skipped: Arc<Mutex<Vec<usize>>>,
    delay: Duration,
    panic: bool,
}

impl QueueJob for Job {
    fn run(self) {
        if !self.delay.is_zero() {
            thread::sleep(self.delay);
        }
        assert!(!self.panic, "job {} exploded (deliberately)", self.id);
        self.ran.lock().expect("ran lock").push(self.id);
    }
    fn cancelled(&self) -> bool {
        self.cancel.load(Ordering::SeqCst)
    }
    fn skip(self) {
        self.skipped.lock().expect("skipped lock").push(self.id);
    }
}

struct Harness {
    ran: Arc<Mutex<Vec<usize>>>,
    skipped: Arc<Mutex<Vec<usize>>>,
    never: Arc<AtomicBool>,
}

impl Harness {
    fn new() -> Self {
        Self {
            ran: Arc::new(Mutex::new(Vec::new())),
            skipped: Arc::new(Mutex::new(Vec::new())),
            never: Arc::new(AtomicBool::new(false)),
        }
    }
    fn job(&self, id: usize) -> Job {
        self.job_with(id, &self.never, Duration::ZERO, false)
    }
    fn job_with(&self, id: usize, cancel: &Arc<AtomicBool>, delay: Duration, panic: bool) -> Job {
        Job {
            id,
            cancel: Arc::clone(cancel),
            ran: Arc::clone(&self.ran),
            skipped: Arc::clone(&self.skipped),
            delay,
            panic,
        }
    }
    fn ran(&self) -> Vec<usize> {
        let mut v = self.ran.lock().expect("ran lock").clone();
        v.sort_unstable();
        v
    }
    fn skipped(&self) -> Vec<usize> {
        let mut v = self.skipped.lock().expect("skipped lock").clone();
        v.sort_unstable();
        v
    }
}

/// Submissions racing a `close()` must each land in exactly one bucket —
/// accepted (and then run) or refused with `Closed`/`Full` — with nothing
/// lost and nothing double-counted. Repeated so the close lands at varied
/// points of the submission stream.
#[test]
fn submit_during_close_never_loses_or_duplicates_jobs() {
    for round in 0..10 {
        let h = Harness::new();
        let q = Arc::new(JobQueue::start(Runner::new(2), 1024));
        let accepted = Arc::new(AtomicUsize::new(0));
        let refused = Arc::new(AtomicUsize::new(0));

        let submitters: Vec<_> = (0..4)
            .map(|t| {
                let q = Arc::clone(&q);
                let h_ran = Arc::clone(&h.ran);
                let h_skipped = Arc::clone(&h.skipped);
                let never = Arc::clone(&h.never);
                let accepted = Arc::clone(&accepted);
                let refused = Arc::clone(&refused);
                thread::spawn(move || {
                    for i in 0..50 {
                        let job = Job {
                            id: t * 1000 + i,
                            cancel: Arc::clone(&never),
                            ran: Arc::clone(&h_ran),
                            skipped: Arc::clone(&h_skipped),
                            delay: Duration::ZERO,
                            panic: false,
                        };
                        match q.try_submit(job) {
                            Ok(()) => {
                                accepted.fetch_add(1, Ordering::SeqCst);
                            }
                            Err(SubmitError::Closed(_) | SubmitError::Full(_)) => {
                                refused.fetch_add(1, Ordering::SeqCst);
                            }
                        }
                    }
                })
            })
            .collect();
        // Close somewhere in the middle of the submission storm; a tiny
        // stagger varies the cut point across rounds.
        thread::sleep(Duration::from_micros(50 * round));
        q.close();
        for s in submitters {
            s.join().expect("submitter");
        }
        q.drain();

        let accepted = accepted.load(Ordering::SeqCst);
        let refused = refused.load(Ordering::SeqCst);
        assert_eq!(
            accepted + refused,
            200,
            "every submit resolves exactly once"
        );
        // Every accepted job ran (none were cancelled); no refused job ran.
        assert_eq!(h.ran().len(), accepted, "accepted jobs all drain");
        assert!(h.skipped().is_empty());
        // Post-close submissions are always refused.
        match q.try_submit(h.job(999_999)) {
            Err(SubmitError::Closed(job)) => assert_eq!(job.id, 999_999),
            other => panic!(
                "expected Closed, got {:?}",
                other.map_err(|e| e.to_string())
            ),
        }
    }
}

/// A job whose waiters give up while it is still queued is *skipped* at the
/// between-jobs cancellation point — exactly once, deterministically, and
/// its `run` never executes.
#[test]
fn skip_after_deadline_fires_exactly_once() {
    let h = Harness::new();
    let doomed_flag = Arc::new(AtomicBool::new(false));
    let q = JobQueue::start(Runner::new(1), 16);

    // Pin the single worker, then queue the doomed job behind it.
    q.try_submit(h.job_with(0, &h.never, Duration::from_millis(80), false))
        .expect("admit blocker");
    q.try_submit(h.job_with(1, &doomed_flag, Duration::ZERO, false))
        .expect("admit doomed");
    q.try_submit(h.job(2)).expect("admit survivor");
    // The "deadline expires" moment: the doomed job's only waiter detaches
    // while the job is still queued.
    doomed_flag.store(true, Ordering::SeqCst);

    q.shutdown();
    assert_eq!(h.ran(), vec![0, 2], "doomed job must never run");
    assert_eq!(h.skipped(), vec![1], "doomed job skipped exactly once");
}

/// A panicking job must not kill its worker, leak the `running` count, or
/// wedge `drain()` — the failure mode this guards against is a drain that
/// blocks forever because a panicked worker never decremented `running`.
#[test]
fn drain_survives_a_panicked_job_and_the_pool_keeps_working() {
    let h = Harness::new();
    let q = Arc::new(JobQueue::start(Runner::new(2), 64));

    q.try_submit(h.job_with(0, &h.never, Duration::ZERO, true))
        .expect("admit the bomb");
    q.try_submit(h.job(1)).expect("admit normal work");
    q.try_submit(h.job(2)).expect("admit normal work");

    // Wait until everything settled, bounded: panics recorded and the
    // healthy jobs ran.
    let deadline = Instant::now() + Duration::from_secs(10);
    while q.panics() < 1 || h.ran().len() < 2 {
        assert!(
            Instant::now() < deadline,
            "panicked job wedged the pool (panics={}, ran={:?})",
            q.panics(),
            h.ran()
        );
        thread::sleep(Duration::from_millis(5));
    }
    assert_eq!(q.panics(), 1);
    assert_eq!(h.ran(), vec![1, 2]);

    // The pool survived: a fresh job still runs to completion.
    q.try_submit(h.job(3)).expect("pool still accepts work");
    q.close();
    // drain() must return despite the earlier panic — this call hanging is
    // precisely the regression this test exists to catch (it is why the
    // worker loop guards jobs with catch_unwind).
    q.drain();
    assert_eq!(h.ran(), vec![1, 2, 3]);
    assert_eq!(q.running(), 0);
    assert_eq!(q.depth(), 0);
}

/// A panic inside `skip()` is guarded identically to one inside `run()`.
#[test]
fn panic_in_skip_is_also_contained() {
    #[derive(Debug)]
    struct SkipBomb {
        armed: Arc<AtomicBool>,
    }
    impl QueueJob for SkipBomb {
        fn run(self) {}
        fn cancelled(&self) -> bool {
            self.armed.load(Ordering::SeqCst)
        }
        fn skip(self) {
            panic!("skip exploded (deliberately)");
        }
    }
    let armed = Arc::new(AtomicBool::new(true));
    let q = JobQueue::start(Runner::new(1), 8);
    q.try_submit(SkipBomb {
        armed: Arc::clone(&armed),
    })
    .expect("admit");
    q.close();
    q.drain(); // must not hang
    assert_eq!(q.panics(), 1);
}
