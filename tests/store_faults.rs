//! Fault-injection tests for the persistent store wired under
//! `fetchmech-serve`, driven in-process: store hits across restart,
//! degraded-mode behaviour under injected I/O failure, opaque 500s for
//! injected worker panics, and replayability of the seeded schedule.

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::path::{Path, PathBuf};
use std::time::{Duration, Instant};

use fetchmech::experiments::ExpConfig;
use fetchmech::json::{parse, Value};
use fetchmech_repro::serve::{ServeConfig, Server};
use fetchmech_repro::store::FaultPlan;

const EXP: ExpConfig = ExpConfig {
    trace_len: 4_000,
    profile_len: 2_000,
};

fn temp_store(name: &str) -> PathBuf {
    let path = std::env::temp_dir().join(format!(
        "fetchmech-storefault-{}-{name}.log",
        std::process::id()
    ));
    let _ = std::fs::remove_file(&path);
    path
}

fn config(store: &Path) -> ServeConfig {
    ServeConfig {
        addr: "127.0.0.1:0".to_string(),
        exp: EXP,
        default_insts: 1_200,
        store_path: Some(store.to_path_buf()),
        ..ServeConfig::default()
    }
}

fn http(addr: SocketAddr, method: &str, path: &str, body: &str) -> (u16, String) {
    let mut stream = TcpStream::connect(addr).expect("connect");
    stream
        .set_read_timeout(Some(Duration::from_secs(180)))
        .unwrap();
    let request = format!(
        "{method} {path} HTTP/1.1\r\nHost: test\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{body}",
        body.len()
    );
    stream.write_all(request.as_bytes()).expect("write request");
    let mut raw = Vec::new();
    stream.read_to_end(&mut raw).expect("read response");
    let text = String::from_utf8(raw).expect("response is UTF-8");
    let (head, body) = text.split_once("\r\n\r\n").expect("response has a head");
    let status: u16 = head
        .split(' ')
        .nth(1)
        .expect("status line")
        .parse()
        .expect("numeric status");
    (status, body.to_string())
}

fn metric_u64(m: &Value, group: &str, field: &str) -> u64 {
    m.get(group)
        .and_then(|g| g.get(field))
        .and_then(Value::as_u64)
        .unwrap_or_else(|| panic!("metrics missing {group}.{field}"))
}

fn metrics(addr: SocketAddr) -> Value {
    let (status, body) = http(addr, "GET", "/metrics", "");
    assert_eq!(status, 200);
    parse(&body).expect("metrics is valid JSON")
}

fn wait_for(addr: SocketAddr, what: &str, pred: impl Fn(&Value) -> bool) {
    let deadline = Instant::now() + Duration::from_secs(30);
    loop {
        if pred(&metrics(addr)) {
            return;
        }
        assert!(Instant::now() < deadline, "timed out waiting for {what}");
        std::thread::sleep(Duration::from_millis(10));
    }
}

const BODIES: [&str; 4] = [
    "{\"bench\": \"compress\", \"scheme\": \"sequential\", \"insts\": 1000}",
    "{\"bench\": \"compress\", \"scheme\": \"collapsing\", \"insts\": 1000}",
    "{\"bench\": \"eqntott\", \"scheme\": \"sequential\", \"insts\": 1000}",
    "{\"bench\": \"eqntott\", \"scheme\": \"perfect\", \"insts\": 1000}",
];

/// Results computed before a restart are served byte-identical after it,
/// straight from the store index — no simulation jobs enqueued.
#[test]
fn restart_serves_durable_results_byte_identical_without_recompute() {
    let store = temp_store("restart");
    let mut originals = Vec::new();
    {
        let server = Server::start(config(&store)).expect("server start");
        let addr = server.addr();
        let (status, body) = http(addr, "GET", "/healthz", "");
        assert_eq!(status, 200);
        let health = parse(&body).expect("healthz JSON");
        assert_eq!(health.get("store").and_then(Value::as_str), Some("active"));
        for body in BODIES {
            let (status, resp) = http(addr, "POST", "/v1/simulate", body);
            assert_eq!(status, 200, "simulate failed: {resp}");
            originals.push(resp);
        }
        // Persistence is write-behind: wait for everything durable before
        // the graceful shutdown (which also flushes, but be explicit).
        wait_for(addr, "all results persisted", |m| {
            metric_u64(m, "store", "persisted") >= BODIES.len() as u64
        });
        server.shutdown();
    }

    let server = Server::start(config(&store)).expect("server restart");
    let addr = server.addr();
    for (body, original) in BODIES.iter().zip(&originals) {
        let (status, resp) = http(addr, "POST", "/v1/simulate", body);
        assert_eq!(status, 200);
        assert_eq!(
            &resp, original,
            "restarted store must serve byte-identical results"
        );
    }
    let m = metrics(addr);
    assert_eq!(
        metric_u64(&m, "jobs", "enqueued"),
        0,
        "store hits must not enqueue simulations"
    );
    assert_eq!(metric_u64(&m, "store", "hits"), BODIES.len() as u64);
    assert_eq!(
        metric_u64(&m, "store", "records_recovered"),
        BODIES.len() as u64
    );

    // Sweeps resolve durable cells from the store too, and the rendering
    // stays byte-for-byte deterministic.
    let sweep = "{\"benches\": [\"compress\", \"eqntott\"], \
                 \"schemes\": [\"sequential\"], \"insts\": 1000}";
    let (status, first) = http(addr, "POST", "/v1/sweep", sweep);
    assert_eq!(status, 200, "sweep failed: {first}");
    let (status, second) = http(addr, "POST", "/v1/sweep", sweep);
    assert_eq!(status, 200);
    assert_eq!(first, second, "sweep over cached cells diverged");
    let m = metrics(addr);
    assert_eq!(
        metric_u64(&m, "jobs", "enqueued"),
        0,
        "fully-durable sweeps must not enqueue simulations"
    );
    server.shutdown();
    let _ = std::fs::remove_file(&store);
}

/// Under a transient-heavy seeded fault schedule the service answers every
/// request correctly, never hangs, and the fault pattern replays exactly
/// under the same seed.
#[test]
fn seeded_io_faults_are_survivable_and_replayable() {
    let plan = FaultPlan {
        seed: 0x5EED_CAFE,
        write_err: 0.35,
        short_write: 0.45,
        sync_fail: 0.25,
        ..FaultPlan::default()
    };
    let run = |name: &str| -> (u64, u64, u64) {
        let store = temp_store(name);
        let server = Server::start(ServeConfig {
            fault: Some(plan),
            ..config(&store)
        })
        .expect("server start");
        let addr = server.addr();
        for body in BODIES {
            let (status, resp) = http(addr, "POST", "/v1/simulate", body);
            assert_eq!(status, 200, "faults must stay invisible to clients: {resp}");
        }
        wait_for(addr, "persistence to settle", |m| {
            metric_u64(m, "store", "persisted") + metric_u64(m, "store", "dropped")
                >= BODIES.len() as u64
        });
        let m = metrics(addr);
        let stats = (
            metric_u64(&m, "store", "write_faults"),
            metric_u64(&m, "store", "sync_faults"),
            metric_u64(&m, "store", "persisted"),
        );
        server.shutdown();
        let _ = std::fs::remove_file(&store);
        stats
    };
    let first = run("chaos-a");
    let second = run("chaos-b");
    assert!(
        first.0 > 0,
        "a 35% write-fault rate must actually inject faults"
    );
    assert_eq!(
        first, second,
        "same seed, same operations => same fault counts"
    );
}

/// An injected worker panic surfaces as an *opaque* 500: the client sees a
/// reference id, never the panic payload or the request internals; the
/// panic is counted; and the server keeps serving afterwards.
#[test]
fn injected_sim_panics_yield_opaque_500s_and_the_server_survives() {
    let store = temp_store("panic");
    let server = Server::start(ServeConfig {
        fault: Some(FaultPlan {
            seed: 1,
            sim_panic: 1.0,
            ..FaultPlan::default()
        }),
        ..config(&store)
    })
    .expect("server start");
    let addr = server.addr();

    let (status, body) = http(addr, "POST", "/v1/simulate", BODIES[0]);
    assert_eq!(status, 500, "injected panic must 500: {body}");
    let err = parse(&body).expect("500 body is JSON");
    assert_eq!(err.get("error").and_then(Value::as_str), Some("internal"));
    let detail = err
        .get("detail")
        .and_then(Value::as_str)
        .expect("500 carries a detail");
    assert!(
        detail.contains("reference err-"),
        "500 must carry an opaque reference id: {detail}"
    );
    for leak in ["panic", "compress", "SimKey", "injected"] {
        assert!(
            !body
                .to_ascii_lowercase()
                .contains(&leak.to_ascii_lowercase()),
            "500 body leaks internals ({leak:?}): {body}"
        );
    }

    let m = metrics(addr);
    assert!(metric_u64(&m, "jobs", "failed") >= 1);
    // The engine's own catch_unwind absorbs the panic before the queue's
    // guard sees it, so the worker-level panic count stays zero.
    assert_eq!(metric_u64(&m, "jobs", "worker_panics"), 0);

    // Failed simulations are never persisted, and the server still serves.
    assert_eq!(metric_u64(&m, "store", "persisted"), 0);
    let (status, _) = http(addr, "GET", "/healthz", "");
    assert_eq!(status, 200);
    server.shutdown();
    let _ = std::fs::remove_file(&store);
}

/// When every store append hard-fails, the service flips to degraded mode —
/// visible in /healthz and /metrics — while requests keep succeeding from
/// the in-memory path.
#[test]
fn hard_store_failure_degrades_gracefully_not_fatally() {
    let store = temp_store("degrade");
    // write_err = 1.0 with this seed yields hard (non-transient) failures
    // often enough to exhaust the retry budget on every append.
    let server = Server::start(ServeConfig {
        fault: Some(FaultPlan {
            seed: 0xDEAD,
            write_err: 1.0,
            ..FaultPlan::default()
        }),
        ..config(&store)
    })
    .expect("server start");
    let addr = server.addr();

    for body in BODIES {
        let (status, resp) = http(addr, "POST", "/v1/simulate", body);
        assert_eq!(status, 200, "degraded store must not fail requests: {resp}");
    }
    wait_for(addr, "the store to degrade", |m| {
        m.get("store")
            .and_then(|s| s.get("state"))
            .and_then(Value::as_str)
            == Some("degraded")
    });
    let (status, body) = http(addr, "GET", "/healthz", "");
    assert_eq!(status, 200);
    let health = parse(&body).expect("healthz JSON");
    assert_eq!(
        health.get("store").and_then(Value::as_str),
        Some("degraded"),
        "healthz must surface the degraded store"
    );
    // Still serving (from memory / recompute): coalesced or fresh, all 200.
    let (status, _) = http(addr, "POST", "/v1/simulate", BODIES[0]);
    assert_eq!(status, 200);
    server.shutdown();
    let _ = std::fs::remove_file(&store);
}
