//! Integration tests for `fetchmech-serve`: boot the server in-process on an
//! ephemeral port and drive it over raw `std::net::TcpStream`, asserting
//! byte-identical results vs serial execution, queue-full shedding,
//! coalescing, deadline expiry, cache reuse across sweeps, and graceful
//! shutdown draining.

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::sync::Arc;
use std::thread;
use std::time::{Duration, Instant};

use fetchmech::experiments::{ExpConfig, Lab, LayoutVariant, TraceKey};
use fetchmech::json::{parse, Value};
use fetchmech::pipeline::MachineModel;
use fetchmech::workloads::InputId;
use fetchmech::{simulate, SchemeKind};
use fetchmech_repro::serve::engine::SimKey;
use fetchmech_repro::serve::{api, ServeConfig, Server};

/// Short traces keep debug-mode runs (which execute the full cycle-level
/// sanitizer) fast.
const EXP: ExpConfig = ExpConfig {
    trace_len: 4_000,
    profile_len: 2_000,
};

/// A simulation long enough to keep a worker visibly busy while a test
/// stages requests behind it. Release-mode block-stream runs retire well
/// over ten million instructions per second on one core, so release needs a
/// much longer trace than debug builds (whose every run also executes the
/// cycle-level sanitizer and its per-instruction oracle).
const SLOW_INSTS: u64 = if cfg!(debug_assertions) {
    120_000
} else {
    3_000_000
};

fn slow_job_body() -> String {
    format!("{{\"bench\": \"gcc\", \"insts\": {SLOW_INSTS}, \"deadline_ms\": 120000}}")
}

fn test_config() -> ServeConfig {
    ServeConfig {
        addr: "127.0.0.1:0".to_string(),
        exp: EXP,
        default_insts: 1_500,
        ..ServeConfig::default()
    }
}

/// One request over a fresh connection; returns (status, head, body
/// including the trailing newline).
fn http_raw(addr: SocketAddr, method: &str, path: &str, body: &str) -> (u16, String, String) {
    let mut stream = TcpStream::connect(addr).expect("connect");
    stream
        .set_read_timeout(Some(Duration::from_secs(180)))
        .unwrap();
    let request = format!(
        "{method} {path} HTTP/1.1\r\nHost: test\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{body}",
        body.len()
    );
    stream.write_all(request.as_bytes()).expect("write request");
    let mut raw = Vec::new();
    stream.read_to_end(&mut raw).expect("read response");
    let text = String::from_utf8(raw).expect("response is UTF-8");
    let (head, body) = text.split_once("\r\n\r\n").expect("response has a head");
    let status: u16 = head
        .split(' ')
        .nth(1)
        .expect("status line")
        .parse()
        .expect("numeric status");
    (status, head.to_string(), body.to_string())
}

/// One request over a fresh connection; returns (status, body including the
/// trailing newline).
fn http(addr: SocketAddr, method: &str, path: &str, body: &str) -> (u16, String) {
    let (status, _, body) = http_raw(addr, method, path, body);
    (status, body)
}

fn metrics(addr: SocketAddr) -> Value {
    let (status, body) = http(addr, "GET", "/metrics", "");
    assert_eq!(status, 200);
    parse(&body).expect("metrics is valid JSON")
}

fn metric_u64(m: &Value, group: &str, field: &str) -> u64 {
    m.get(group)
        .and_then(|g| g.get(field))
        .and_then(Value::as_u64)
        .unwrap_or_else(|| panic!("metrics missing {group}.{field}"))
}

/// Polls `/metrics` until `pred` holds (or panics after ~10s).
fn wait_for(addr: SocketAddr, what: &str, pred: impl Fn(&Value) -> bool) {
    let deadline = Instant::now() + Duration::from_secs(10);
    loop {
        if pred(&metrics(addr)) {
            return;
        }
        assert!(Instant::now() < deadline, "timed out waiting for {what}");
        thread::sleep(Duration::from_millis(10));
    }
}

/// What the server must answer for `key`: the same simulation run serially,
/// rendered through the same JSON path, plus the wire newline.
fn expected_body(lab: &Lab, key: &SimKey, machine: &MachineModel) -> String {
    let trace = lab.trace(TraceKey {
        bench: key.bench,
        variant: key.variant,
        block_bytes: machine.block_bytes,
        input: InputId::TEST,
        limit: key.insts,
    });
    let result = simulate(machine, key.scheme, &trace);
    format!("{}\n", api::sim_result_json(key, &result).pretty())
}

#[test]
fn healthz_and_basic_errors() {
    let server = Server::start(test_config()).expect("server start");
    let addr = server.addr();

    let (status, body) = http(addr, "GET", "/healthz", "");
    assert_eq!(status, 200);
    let health = parse(&body).expect("healthz is valid JSON");
    assert_eq!(health.get("status").and_then(Value::as_str), Some("ok"));
    assert_eq!(
        health.get("store").and_then(Value::as_str),
        Some("disabled"),
        "no store configured: healthz reports the tier disabled"
    );
    assert!(health.get("benches").and_then(Value::as_array).is_some());

    let (status, body) = http(addr, "POST", "/v1/simulate", "{\"bench\": \"nope\"}");
    assert_eq!(status, 400, "unknown bench must 400: {body}");
    let (status, _) = http(addr, "POST", "/v1/simulate", "not json");
    assert_eq!(status, 400);
    let (status, _) = http(addr, "GET", "/v1/simulate", "");
    assert_eq!(status, 404);
    let (status, _) = http(addr, "DELETE", "/healthz", "");
    assert_eq!(status, 405);
    let (status, body) = http(
        addr,
        "POST",
        "/v1/simulate",
        "{\"bench\": \"compress\", \"bogus\": 1}",
    );
    assert_eq!(status, 400, "unknown fields must 400: {body}");

    server.shutdown();
}

#[test]
fn concurrent_simulations_match_serial_execution() {
    let server = Server::start(test_config()).expect("server start");
    let addr = server.addr();

    // 8 distinct keys, requested 4× each = 32 concurrent clients.
    let mut keys = Vec::new();
    for bench in ["compress", "eqntott"] {
        for scheme in [
            SchemeKind::Sequential,
            SchemeKind::BankedSequential,
            SchemeKind::CollapsingBuffer,
            SchemeKind::Perfect,
        ] {
            keys.push(SimKey {
                bench,
                machine: "p14",
                scheme,
                variant: LayoutVariant::Natural,
                insts: 1_200,
            });
        }
    }

    let serial_lab = Lab::with_threads(EXP, 1);
    let machine = MachineModel::p14();
    let expected: Vec<String> = keys
        .iter()
        .map(|key| expected_body(&serial_lab, key, &machine))
        .collect();

    let keys = Arc::new(keys);
    let handles: Vec<_> = (0..32)
        .map(|i| {
            let keys = Arc::clone(&keys);
            thread::spawn(move || {
                let key = &keys[i % keys.len()];
                let body = format!(
                    "{{\"bench\": \"{}\", \"scheme\": \"{}\", \"insts\": {}}}",
                    key.bench,
                    key.scheme.name(),
                    key.insts
                );
                (i % keys.len(), http(addr, "POST", "/v1/simulate", &body))
            })
        })
        .collect();
    for handle in handles {
        let (key_idx, (status, body)) = handle.join().expect("client thread");
        assert_eq!(status, 200, "simulate failed: {body}");
        assert_eq!(
            body, expected[key_idx],
            "concurrent response differs from serial execution"
        );
    }

    let m = metrics(addr);
    assert_eq!(metric_u64(&m, "responses", "ok_200"), 32);
    assert!(metric_u64(&m, "jobs", "completed") >= 8);
    server.shutdown();
}

#[test]
fn full_queue_sheds_with_429_and_coalesces_identical_work() {
    let config = ServeConfig {
        threads: Some(1),
        queue_capacity: 1,
        max_insts: SLOW_INSTS,
        ..test_config()
    };
    let server = Server::start(config).expect("server start");
    let addr = server.addr();

    // Occupy the single worker with a long simulation.
    let slow = thread::spawn(move || http(addr, "POST", "/v1/simulate", &slow_job_body()));
    wait_for(addr, "the slow job to start", |m| {
        metric_u64(m, "jobs", "running") == 1
    });

    // Two identical requests: the first fills the queue's only slot, the
    // second coalesces onto it instead of being shed.
    let queued_body = "{\"bench\": \"compress\", \"insts\": 900, \"deadline_ms\": 120000}";
    let queued_a = thread::spawn(move || http(addr, "POST", "/v1/simulate", queued_body));
    wait_for(addr, "the queue slot to fill", |m| {
        metric_u64(m, "jobs", "queue_depth") == 1
    });
    let queued_b = thread::spawn(move || http(addr, "POST", "/v1/simulate", queued_body));
    wait_for(addr, "the identical request to coalesce", |m| {
        metric_u64(m, "jobs", "coalesced") == 1
    });

    // A *distinct* request now finds the queue full and is shed — with a
    // Retry-After hint so clients back off instead of hammering.
    let (status, head, body) = http_raw(
        addr,
        "POST",
        "/v1/simulate",
        "{\"bench\": \"eqntott\", \"insts\": 900}",
    );
    assert_eq!(status, 429, "expected shed, got: {body}");
    assert!(
        head.lines()
            .any(|l| l.to_ascii_lowercase().starts_with("retry-after:")),
        "429 must carry Retry-After: {head}"
    );
    let shed = parse(&body).expect("429 body is JSON");
    assert_eq!(
        shed.get("error").and_then(Value::as_str),
        Some("queue_full")
    );

    let (status, slow_body) = slow.join().expect("slow client");
    assert_eq!(status, 200, "slow request must finish: {slow_body}");
    let (status_a, body_a) = queued_a.join().expect("queued client a");
    let (status_b, body_b) = queued_b.join().expect("queued client b");
    assert_eq!((status_a, status_b), (200, 200));
    assert_eq!(body_a, body_b, "coalesced responses must be byte-identical");

    let m = metrics(addr);
    assert_eq!(metric_u64(&m, "jobs", "shed"), 1);
    assert_eq!(metric_u64(&m, "responses", "shed_429"), 1);
    server.shutdown();
}

#[test]
fn expired_deadline_answers_504_and_skips_the_queued_job() {
    let config = ServeConfig {
        threads: Some(1),
        max_insts: SLOW_INSTS,
        ..test_config()
    };
    let server = Server::start(config).expect("server start");
    let addr = server.addr();

    let slow = thread::spawn(move || http(addr, "POST", "/v1/simulate", &slow_job_body()));
    wait_for(addr, "the slow job to start", |m| {
        metric_u64(m, "jobs", "running") == 1
    });

    // Queued behind the slow job with a deadline it cannot meet.
    let (status, body) = http(
        addr,
        "POST",
        "/v1/simulate",
        "{\"bench\": \"li\", \"insts\": 900, \"deadline_ms\": 30}",
    );
    assert_eq!(status, 504, "expected deadline expiry, got: {body}");
    let err = parse(&body).expect("504 body is JSON");
    assert_eq!(
        err.get("error").and_then(Value::as_str),
        Some("deadline_exceeded")
    );

    let (status, _) = slow.join().expect("slow client");
    assert_eq!(status, 200);
    // With its only waiter gone, the queued job is skipped, not run.
    wait_for(addr, "the abandoned job to be skipped", |m| {
        metric_u64(m, "jobs", "expired") == 1
    });
    let m = metrics(addr);
    assert_eq!(metric_u64(&m, "responses", "deadline_504"), 1);
    server.shutdown();
}

#[test]
fn repeated_sweeps_hit_the_lab_cache_and_stay_deterministic() {
    let server = Server::start(test_config()).expect("server start");
    let addr = server.addr();

    let sweep = "{\"benches\": [\"compress\", \"eqntott\"], \
                 \"schemes\": [\"sequential\", \"collapsing\"], \"insts\": 1100}";
    let (status, first) = http(addr, "POST", "/v1/sweep", sweep);
    assert_eq!(status, 200, "sweep failed: {first}");
    let doc = parse(&first).expect("sweep body is JSON");
    assert_eq!(doc.get("jobs").and_then(Value::as_u64), Some(4));
    assert_eq!(
        doc.get("results")
            .and_then(Value::as_array)
            .map(<[Value]>::len),
        Some(4)
    );

    let hits_after_first = metric_u64(&metrics(addr), "lab_cache", "trace_hits");
    let (status, second) = http(addr, "POST", "/v1/sweep", sweep);
    assert_eq!(status, 200);
    assert_eq!(first, second, "identical sweeps must be byte-identical");

    // Every cell of the repeated sweep re-uses a cached trace.
    let hits_after_second = metric_u64(&metrics(addr), "lab_cache", "trace_hits");
    assert!(
        hits_after_second >= hits_after_first + 4,
        "repeated sweep should hit the trace cache \
         ({hits_after_first} -> {hits_after_second})"
    );

    // Oversized grids are rejected up front.
    let (status, body) = http(
        addr,
        "POST",
        "/v1/sweep",
        "{\"benches\": [\"compress\"], \"insts\": 0}",
    );
    assert_eq!(status, 400, "zero insts must 400: {body}");
    server.shutdown();
}

/// Renders a `/v1/programs` upload body through the server's own JSON
/// encoder, so the source text is escaped correctly.
fn upload_body(format: &str, source: &str) -> String {
    Value::object([
        ("format", Value::Str(format.to_string())),
        ("source", Value::Str(source.to_string())),
    ])
    .pretty()
}

#[test]
fn program_upload_validation_errors() {
    let server = Server::start(test_config()).expect("server start");
    let addr = server.addr();

    // Missing fields and unknown formats are request-level 400s.
    let (status, body) = http(addr, "POST", "/v1/programs", "{}");
    assert_eq!(status, 400, "missing format must 400: {body}");
    let (status, body) = http(addr, "POST", "/v1/programs", &upload_body("elf", "x"));
    assert_eq!(status, 400, "unknown format must 400: {body}");
    let err = parse(&body).expect("400 body is JSON");
    assert_eq!(
        err.get("error").and_then(Value::as_str),
        Some("invalid_request")
    );

    // A well-formed request carrying a bad program is a *program*-level 400
    // with the frontend's diagnostic text.
    let (status, body) = http(
        addr,
        "POST",
        "/v1/programs",
        &upload_body("bril", "{\"functions\": []}"),
    );
    assert_eq!(status, 400, "empty module must 400: {body}");
    let err = parse(&body).expect("400 body is JSON");
    assert_eq!(
        err.get("error").and_then(Value::as_str),
        Some("invalid_program")
    );
    assert!(
        err.get("detail")
            .and_then(Value::as_str)
            .is_some_and(|m| m.contains("must not be empty")),
        "diagnostic text must survive to the client: {body}"
    );

    server.shutdown();
}

#[test]
fn uploaded_program_sweeps_end_to_end_and_survives_restart() {
    let store = std::env::temp_dir().join(format!(
        "fetchmech-serve-programs-{}.log",
        std::process::id()
    ));
    let _ = std::fs::remove_file(&store);
    let config = || ServeConfig {
        store_path: Some(store.clone()),
        ..test_config()
    };
    let wat = include_str!("../examples/programs/kernel.wat");
    let upload = upload_body("wat", wat);

    let (id, first_sweep, sweep_req);
    {
        let server = Server::start(config()).expect("server start");
        let addr = server.addr();

        let (status, body) = http(addr, "POST", "/v1/programs", &upload);
        assert_eq!(status, 200, "upload failed: {body}");
        let doc = parse(&body).expect("upload response is JSON");
        id = doc
            .get("id")
            .and_then(Value::as_str)
            .expect("upload response has an id")
            .to_string();
        assert!(id.starts_with("prog-"), "content-hash id: {id}");
        assert_eq!(doc.get("registered").and_then(Value::as_bool), Some(true));

        // Idempotent: the same source maps to the same id, not a duplicate.
        let (status, body) = http(addr, "POST", "/v1/programs", &upload);
        assert_eq!(status, 200);
        let doc = parse(&body).expect("re-upload response is JSON");
        assert_eq!(doc.get("id").and_then(Value::as_str), Some(id.as_str()));
        assert_eq!(doc.get("registered").and_then(Value::as_bool), Some(false));

        // The id joins the /healthz vocabulary.
        let (status, health) = http(addr, "GET", "/healthz", "");
        assert_eq!(status, 200);
        let health = parse(&health).expect("healthz JSON");
        assert!(
            health
                .get("programs")
                .and_then(Value::as_array)
                .is_some_and(|ps| ps.iter().any(|p| p.as_str() == Some(&id))),
            "healthz must list the uploaded program"
        );

        // Sweep the uploaded program across every fetch scheme, through the
        // exact machinery the suite benchmarks use.
        sweep_req = format!("{{\"benches\": [\"{id}\"], \"insts\": 1200}}");
        let (status, sweep) = http(addr, "POST", "/v1/sweep", &sweep_req);
        assert_eq!(status, 200, "sweep failed: {sweep}");
        let doc = parse(&sweep).expect("sweep body is JSON");
        assert_eq!(
            doc.get("jobs").and_then(Value::as_u64),
            Some(SchemeKind::ALL.len() as u64)
        );
        first_sweep = sweep;

        wait_for(addr, "all results persisted", |m| {
            metric_u64(m, "store", "persisted") >= SchemeKind::ALL.len() as u64
        });
        server.shutdown();
    }

    // Restart: the registry is per-process, so the id is unknown until the
    // client re-uploads — after which the store serves the original bytes
    // without enqueueing a single job.
    let server = Server::start(config()).expect("server restart");
    let addr = server.addr();
    let (status, body) = http(addr, "POST", "/v1/sweep", &sweep_req);
    assert_eq!(
        status, 400,
        "unregistered id must 400 after restart: {body}"
    );
    let (status, body) = http(addr, "POST", "/v1/programs", &upload);
    assert_eq!(status, 200, "re-upload failed: {body}");
    let (status, second_sweep) = http(addr, "POST", "/v1/sweep", &sweep_req);
    assert_eq!(status, 200);
    assert_eq!(
        first_sweep, second_sweep,
        "restart must serve byte-identical sweep results from the store"
    );
    let m = metrics(addr);
    assert_eq!(
        metric_u64(&m, "jobs", "enqueued"),
        0,
        "restart sweep must be resolved entirely from the store"
    );
    server.shutdown();
    let _ = std::fs::remove_file(&store);
}

#[test]
fn stalled_and_half_closed_clients_cannot_pin_workers() {
    // Tight socket timeouts and only two connection slots: if a stalled
    // client could pin its handler thread, the service would be wedged.
    let config = ServeConfig {
        read_timeout: Duration::from_millis(200),
        write_timeout: Duration::from_millis(200),
        max_connections: 2,
        ..test_config()
    };
    let server = Server::start(config).expect("server start");
    let addr = server.addr();

    // Slow-loris: sends half a request head, then stalls forever.
    let mut loris = TcpStream::connect(addr).expect("connect loris");
    loris
        .write_all(b"POST /v1/simulate HTTP/1.1\r\nContent-")
        .expect("partial head");

    // Half-closed: connects, then shuts its write side without sending a
    // byte (the server sees EOF and must drop the connection immediately).
    let half = TcpStream::connect(addr).expect("connect half-closed");
    half.shutdown(std::net::Shutdown::Write)
        .expect("half close");

    // Both slots are (at worst briefly) occupied; the read timeout must
    // free the loris slot, after which normal service resumes. Saturated
    // 503s — or outright resets — in the window are acceptable; a hang is
    // not. The probe therefore swallows connection-level errors.
    let probe = |addr: std::net::SocketAddr| -> Option<u16> {
        let mut stream = TcpStream::connect(addr).ok()?;
        stream.set_read_timeout(Some(Duration::from_secs(5))).ok()?;
        stream
            .write_all(b"GET /healthz HTTP/1.1\r\nHost: t\r\nContent-Length: 0\r\nConnection: close\r\n\r\n")
            .ok()?;
        let mut raw = Vec::new();
        stream.read_to_end(&mut raw).ok()?;
        let text = String::from_utf8(raw).ok()?;
        text.split(' ').nth(1)?.parse().ok()
    };
    let deadline = Instant::now() + Duration::from_secs(10);
    loop {
        let status = probe(addr);
        if status == Some(200) {
            break;
        }
        assert!(
            Instant::now() < deadline,
            "stalled clients wedged the server (last status {status:?})"
        );
        thread::sleep(Duration::from_millis(25));
    }

    // The server actively closed the stalled connection: the loris read
    // side reaches EOF instead of blocking forever.
    loris
        .set_read_timeout(Some(Duration::from_secs(10)))
        .unwrap();
    let mut sink = Vec::new();
    let _ = loris.read_to_end(&mut sink); // EOF or reset, never a hang
    server.shutdown();
}

#[test]
fn shutdown_drains_in_flight_requests() {
    let config = ServeConfig {
        threads: Some(1),
        max_insts: SLOW_INSTS,
        ..test_config()
    };
    let server = Server::start(config).expect("server start");
    let addr = server.addr();

    let inflight = thread::spawn(move || http(addr, "POST", "/v1/simulate", &slow_job_body()));
    wait_for(addr, "the in-flight job to start", |m| {
        metric_u64(m, "jobs", "running") == 1
    });

    server.shutdown();

    // The in-flight request was drained, not dropped.
    let (status, body) = inflight.join().expect("in-flight client");
    assert_eq!(status, 200, "drained request must succeed: {body}");

    // And the listener is gone: new connections are refused.
    assert!(
        TcpStream::connect_timeout(&addr, Duration::from_millis(500)).is_err(),
        "server should stop accepting after shutdown"
    );
}
