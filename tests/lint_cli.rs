//! Exit-code contract of the `fetchmech-lint` binary.
//!
//! CI keys off these statuses (see `ci/check.sh`): 0 = clean, 1 = at least
//! one error-severity diagnostic (or a benchmark that failed to build),
//! 2 = usage error. The sanitize self-test runs corrupted-by-construction
//! event streams, so it must exit 1 *with* the expected rule ids on stdout —
//! that is the test proving the engine and the exit plumbing both work.

use std::process::{Command, Output};

use fetchmech_analysis::sanitize::RULES;
use fetchmech_analysis::OPT_RULES;

fn lint(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_fetchmech-lint"))
        .args(args)
        .output()
        .expect("failed to spawn fetchmech-lint")
}

fn exit_code(out: &Output) -> i32 {
    out.status.code().expect("lint terminated by signal")
}

#[test]
fn sanitize_self_test_exits_nonzero_with_expected_rules() {
    let out = lint(&["sanitize", "--self-test"]);
    assert_eq!(exit_code(&out), 1, "injected corruption must fail the run");
    let stdout = String::from_utf8_lossy(&out.stdout);
    for rule in [
        "sanitize.fetch.sequential-boundary",
        "sanitize.fetch.bank-conflict",
        "sanitize.conservation.packet-width",
        "sanitize.predictor.update-accounting",
    ] {
        assert!(stdout.contains(rule), "missing {rule} in:\n{stdout}");
    }
}

#[test]
fn sanitize_clean_benchmark_exits_zero() {
    let out = lint(&["sanitize", "--short", "compress"]);
    let stdout = String::from_utf8_lossy(&out.stdout);
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert_eq!(exit_code(&out), 0, "stdout:\n{stdout}\nstderr:\n{stderr}");
    assert!(
        stdout.contains("compress: 0 finding(s), 0 error(s)"),
        "{stdout}"
    );
}

#[test]
fn sanitize_list_prints_the_full_rule_catalog() {
    let out = lint(&["sanitize", "--list"]);
    assert_eq!(exit_code(&out), 0);
    let stdout = String::from_utf8_lossy(&out.stdout);
    for (rule, _) in RULES {
        assert!(stdout.contains(rule), "missing {rule} in:\n{stdout}");
    }
}

#[test]
fn usage_errors_exit_two() {
    // Unknown sanitizer rule id.
    let out = lint(&["sanitize", "--disable", "no.such.rule", "compress"]);
    assert_eq!(exit_code(&out), 2);
    assert!(String::from_utf8_lossy(&out.stderr).contains("no.such.rule"));
    // Unknown option in the default lint mode.
    let out = lint(&["--bogus-flag"]);
    assert_eq!(exit_code(&out), 2);
    // Unknown pass name.
    let out = lint(&["--pass", "no-such-pass", "compress"]);
    assert_eq!(exit_code(&out), 2);
}

#[test]
fn opt_self_test_exits_nonzero_with_expected_rules() {
    let out = lint(&["opt", "--self-test"]);
    assert_eq!(exit_code(&out), 1, "injected corruption must fail the run");
    let stdout = String::from_utf8_lossy(&out.stdout);
    for rule in ["opt.shape", "opt.body-preserved"] {
        assert!(stdout.contains(rule), "missing {rule} in:\n{stdout}");
    }
}

#[test]
fn opt_verified_clean_benchmark_exits_zero() {
    let out = lint(&["opt", "--verify", "--insts", "4000", "compress"]);
    let stdout = String::from_utf8_lossy(&out.stdout);
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert_eq!(exit_code(&out), 0, "stdout:\n{stdout}\nstderr:\n{stderr}");
}

#[test]
fn opt_list_prints_the_full_rule_catalog() {
    let out = lint(&["opt", "--list"]);
    assert_eq!(exit_code(&out), 0);
    let stdout = String::from_utf8_lossy(&out.stdout);
    for rule in OPT_RULES {
        assert!(stdout.contains(rule), "missing {rule} in:\n{stdout}");
    }
    for pass in ["lvn", "dce", "superblock", "straighten"] {
        assert!(stdout.contains(pass), "missing {pass} in:\n{stdout}");
    }
}

#[test]
fn opt_usage_errors_exit_two() {
    // Unknown pass name in the pipeline list.
    let out = lint(&["opt", "--passes", "lvn,no-such-pass", "compress"]);
    assert_eq!(exit_code(&out), 2);
    assert!(String::from_utf8_lossy(&out.stderr).contains("no-such-pass"));
    // Unknown rule id in --disable (parity with sanitize/analyze).
    let out = lint(&["opt", "--disable", "no.such.rule", "compress"]);
    assert_eq!(exit_code(&out), 2);
}

#[test]
fn analyze_disable_rejects_unknown_rule() {
    let out = lint(&["analyze", "--disable", "no.such.rule", "compress"]);
    assert_eq!(exit_code(&out), 2);
    assert!(String::from_utf8_lossy(&out.stderr).contains("no.such.rule"));
}

#[test]
fn analyze_list_includes_the_ssa_analysis() {
    let out = lint(&["analyze", "--list"]);
    assert_eq!(exit_code(&out), 0);
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("ssa"), "missing ssa in:\n{stdout}");
}

#[test]
fn frontend_clean_examples_exit_zero() {
    // Integration tests run with the package root as cwd, so the checked-in
    // examples are reachable relatively. One Bril and one WAT program,
    // through parse -> lower -> lint -> dump.
    let out = lint(&[
        "frontend",
        "--insts",
        "2000",
        "--dump",
        "examples/programs/loopmix.bril.json",
        "examples/programs/kernel.wat",
    ]);
    let stdout = String::from_utf8_lossy(&out.stdout);
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert_eq!(exit_code(&out), 0, "stdout:\n{stdout}\nstderr:\n{stderr}");
    // Content-hash program ids and dumped labels are in the report.
    assert!(stdout.contains("prog-"), "{stdout}");
    assert!(stdout.contains("main.outer:"), "{stdout}");
}

#[test]
fn frontend_bad_program_exits_one() {
    let dir = std::env::temp_dir().join("fetchmech-lint-cli-test");
    std::fs::create_dir_all(&dir).expect("create temp dir");
    let bad = dir.join("bad.bril.json");
    std::fs::write(&bad, r#"{"functions": []}"#).expect("write bad program");
    let out = lint(&["frontend", bad.to_str().expect("utf-8 path")]);
    assert_eq!(exit_code(&out), 1);
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("must not be empty"), "{stderr}");
}

#[test]
fn frontend_usage_errors_exit_two() {
    // No files at all.
    let out = lint(&["frontend"]);
    assert_eq!(exit_code(&out), 2);
    // Unrecognized extension: the format cannot be inferred.
    let out = lint(&["frontend", "program.txt"]);
    assert_eq!(exit_code(&out), 2);
    assert!(String::from_utf8_lossy(&out.stderr).contains("program.txt"));
    // Unknown rule id in --disable (parity with the other subcommands,
    // via the shared flag parser).
    let out = lint(&[
        "frontend",
        "--disable",
        "no.such.rule",
        "examples/programs/kernel.wat",
    ]);
    assert_eq!(exit_code(&out), 2);
    // Unknown machine model, also via the shared flag parser.
    let out = lint(&[
        "frontend",
        "--machine",
        "p99",
        "examples/programs/kernel.wat",
    ]);
    assert_eq!(exit_code(&out), 2);
}

#[test]
fn frontend_list_names_both_formats() {
    let out = lint(&["frontend", "--list"]);
    assert_eq!(exit_code(&out), 0);
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("bril"), "{stdout}");
    assert!(stdout.contains("wat"), "{stdout}");
}

#[test]
fn unknown_benchmark_exits_one() {
    let out = lint(&["sanitize", "--short", "no-such-benchmark"]);
    assert_eq!(exit_code(&out), 1);
    assert!(String::from_utf8_lossy(&out.stderr).contains("unknown benchmark"));
}
