//! Acceptance test for the fetch-oriented passes: superblock formation plus
//! branch straightening must improve the static EIR prediction on real
//! suite workloads, and the prediction must stay honest — measured EIR on
//! the optimized layout never exceeds the static analyzer's bound.

use fetchmech::compiler::{optimize, OptimizeConfig, PassKind, Profile};
use fetchmech::isa::{Layout, LayoutOptions};
use fetchmech::pipeline::MachineModel;
use fetchmech::workloads::{suite, InputId, Workload};
use fetchmech::{simulate, SchemeKind};
use fetchmech_analysis::eir_delta;

const INSTS: u64 = 20_000;
const WORKLOADS: [&str; 4] = ["compress", "eqntott", "espresso", "sc"];

fn optimize_for(name: &str, machine: &MachineModel) -> (Workload, fetchmech_analysis::EirDelta) {
    let w = suite::benchmark(name).expect("known benchmark");
    let profile = Profile::collect(&w, &InputId::PROFILE, INSTS);
    let optimized = optimize(
        &w.program,
        &profile,
        &[PassKind::Superblock, PassKind::Straighten],
        &OptimizeConfig::default(),
    );
    let w_after = Workload {
        spec: w.spec.clone(),
        program: optimized.program.clone(),
        behaviors: w.behaviors.with_origin(optimized.branch_origin.clone()),
    };
    let measured = Profile::collect(&w_after, &InputId::PROFILE, INSTS);
    let delta = eir_delta(&w.program, &profile, &optimized, Some(&measured), machine)
        .expect("pipeline layout");
    // Re-lay the optimized program in its pipeline order and run the real
    // simulator over it, so the bound check below exercises the same
    // layout the static analyzer scored.
    let layout = Layout::new(
        &optimized.program,
        &optimized.order,
        LayoutOptions::new(machine.block_bytes),
    )
    .expect("tuned layout");
    let trace: Vec<_> = w_after.executor(&layout, InputId::TEST, INSTS).collect();
    for scheme in SchemeKind::ALL {
        let r = simulate(machine, scheme, trace.clone());
        let bound = delta.after.scheme(scheme).eir_bound;
        assert!(
            r.eir() <= bound + 1e-9,
            "{name}/{scheme}: measured EIR {:.3} exceeds static bound {bound:.3}",
            r.eir()
        );
    }
    (w, delta)
}

/// Superblock + straighten shows a positive predicted sequential-EIR delta
/// on at least three suite workloads (the paper's fetch-oriented layout
/// claim, stated against our static model).
#[test]
fn fetch_passes_improve_predicted_eir_on_suite_workloads() {
    let machine = MachineModel::p112();
    let mut improved = Vec::new();
    for name in WORKLOADS {
        let (_w, delta) = optimize_for(name, &machine);
        let seq = delta
            .weighted
            .iter()
            .find(|e| e.scheme == SchemeKind::Sequential)
            .expect("sequential analyzed");
        if seq.after > seq.before {
            improved.push((name, seq.after - seq.before));
        }
    }
    assert!(
        improved.len() >= 3,
        "expected >= 3 workloads with positive predicted sequential-EIR \
         delta, got {improved:?}"
    );
}
