//! The clean suite: every benchmark, every fetch scheme, zero sanitizer
//! findings.
//!
//! The mutation tests (in `fetchmech-analysis`) prove the engine catches
//! injected bugs; this proves the *real* simulator satisfies every invariant
//! the engine checks — including the cross-scheme EIR dominance ordering —
//! on short traces of the full workload suite. A finding here is a simulator
//! bug, not a test bug (that is how the Perfect-scheme prefetch bug was
//! found).

use std::sync::Arc;

use fetchmech::isa::{DynInst, Layout, LayoutOptions};
use fetchmech::pipeline::MachineModel;
use fetchmech::sanitize::{check_dominance, simulate_checked};
use fetchmech::workloads::{suite, InputId};
use fetchmech::SchemeKind;

const TRACE_LEN: u64 = 1_500;

#[test]
fn full_suite_runs_clean_under_the_sanitizer() {
    let machine = MachineModel::p14();
    for name in suite::INT_NAMES.iter().chain(suite::FP_NAMES.iter()) {
        let w = suite::benchmark(name).expect("suite benchmark");
        let layout = Layout::natural(&w.program, LayoutOptions::new(machine.block_bytes))
            .expect("suite programs lay out at paper block sizes");
        let trace: Arc<[DynInst]> = w
            .executor(&layout, InputId::TEST, TRACE_LEN)
            .collect::<Vec<_>>()
            .into();

        for scheme in SchemeKind::ALL {
            let (result, diags) = simulate_checked(&machine, scheme, &trace);
            assert!(
                diags.is_empty(),
                "{name}/{scheme:?}: sanitizer findings on a real run:\n{}",
                fetchmech_analysis::report_human(&diags)
            );
            assert!(result.ipc() > 0.0, "{name}/{scheme:?} made no progress");
        }

        let (eirs, diags) = check_dominance(&machine, name, &trace);
        assert!(
            diags.is_empty(),
            "{name}: dominance harness findings:\n{}",
            fetchmech_analysis::report_human(&diags)
        );
        assert_eq!(eirs.len(), SchemeKind::ALL.len());
    }
}
