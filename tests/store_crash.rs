//! Kill-and-recover integration test: runs the real `fetchmech-serve`
//! binary, persists results, SIGKILLs it mid-operation, corrupts the log
//! tail the way a torn write would, restarts, and asserts the durable
//! prefix is recovered byte-identically — without recomputation. Finishes
//! with a graceful SIGTERM drain and writes `BENCH_PR7.json`.

use std::io::{BufRead, BufReader, Read, Write};
use std::net::TcpStream;
use std::process::{Child, Command, Stdio};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use fetchmech::json::{parse, Value};

const KEYS: [&str; 4] = [
    "{\"bench\": \"compress\", \"scheme\": \"sequential\", \"insts\": 1000}",
    "{\"bench\": \"compress\", \"scheme\": \"collapsing\", \"insts\": 1000}",
    "{\"bench\": \"eqntott\", \"scheme\": \"sequential\", \"insts\": 1000}",
    "{\"bench\": \"eqntott\", \"scheme\": \"perfect\", \"insts\": 1000}",
];

/// A spawned server plus the machinery watching its stdout.
struct ServerProc {
    child: Child,
    addr: String,
    stdout: Arc<Mutex<String>>,
}

impl ServerProc {
    /// Spawns `fetchmech-serve --quick --store <path>` on an ephemeral port
    /// and waits for the listening line to learn the address.
    fn spawn(store: &std::path::Path) -> ServerProc {
        let mut child = Command::new(env!("CARGO_BIN_EXE_fetchmech-serve"))
            .args(["--addr", "127.0.0.1:0", "--quick", "--insts", "1000"])
            .arg("--store")
            .arg(store)
            .stdout(Stdio::piped())
            .stderr(Stdio::null())
            .spawn()
            .expect("spawn fetchmech-serve");
        let mut lines = BufReader::new(child.stdout.take().expect("piped stdout")).lines();
        let mut addr = None;
        for line in lines.by_ref() {
            let line = line.expect("read server stdout");
            if let Some(rest) = line.strip_prefix("fetchmech-serve listening on http://") {
                addr = Some(rest.trim().to_string());
                break;
            }
        }
        let addr = addr.expect("server printed its listening address");
        // Keep draining stdout so the pipe never backs up, and keep the
        // text for the final "drained, bye" assertion.
        let stdout = Arc::new(Mutex::new(String::new()));
        let sink = Arc::clone(&stdout);
        std::thread::spawn(move || {
            for line in lines {
                let Ok(line) = line else { break };
                let mut text = sink.lock().expect("stdout sink");
                text.push_str(&line);
                text.push('\n');
            }
        });
        ServerProc {
            child,
            addr,
            stdout,
        }
    }

    fn http(&self, method: &str, path: &str, body: &str) -> (u16, String) {
        http(&self.addr, method, path, body)
    }

    fn metrics(&self) -> Value {
        let (status, body) = self.http("GET", "/metrics", "");
        assert_eq!(status, 200);
        parse(&body).expect("metrics is valid JSON")
    }

    /// Immediate, non-graceful death — the crash we are testing recovery from.
    fn sigkill(mut self) {
        self.child.kill().expect("SIGKILL server");
        self.child.wait().expect("reap server");
    }

    /// Graceful shutdown; returns everything the server printed after the
    /// listening line.
    fn sigterm_and_wait(mut self) -> String {
        let pid = self.child.id().to_string();
        let status = Command::new("kill")
            .args(["-TERM", &pid])
            .status()
            .expect("send SIGTERM");
        assert!(status.success(), "kill -TERM failed");
        let deadline = Instant::now() + Duration::from_secs(60);
        loop {
            if let Some(status) = self.child.try_wait().expect("try_wait") {
                assert!(status.success(), "server exited nonzero: {status}");
                break;
            }
            assert!(Instant::now() < deadline, "server ignored SIGTERM");
            std::thread::sleep(Duration::from_millis(20));
        }
        // Give the drain thread a beat to flush the last lines.
        std::thread::sleep(Duration::from_millis(50));
        self.stdout.lock().expect("stdout sink").clone()
    }
}

fn http(addr: &str, method: &str, path: &str, body: &str) -> (u16, String) {
    let mut stream = TcpStream::connect(addr).expect("connect");
    stream
        .set_read_timeout(Some(Duration::from_secs(180)))
        .unwrap();
    let request = format!(
        "{method} {path} HTTP/1.1\r\nHost: test\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{body}",
        body.len()
    );
    stream.write_all(request.as_bytes()).expect("write request");
    let mut raw = Vec::new();
    stream.read_to_end(&mut raw).expect("read response");
    let text = String::from_utf8(raw).expect("response is UTF-8");
    let (head, body) = text.split_once("\r\n\r\n").expect("response has a head");
    let status: u16 = head
        .split(' ')
        .nth(1)
        .expect("status line")
        .parse()
        .expect("numeric status");
    (status, body.to_string())
}

fn metric_u64(m: &Value, group: &str, field: &str) -> u64 {
    m.get(group)
        .and_then(|g| g.get(field))
        .and_then(Value::as_u64)
        .unwrap_or_else(|| panic!("metrics missing {group}.{field}"))
}

#[test]
fn sigkill_mid_write_recovers_durable_results_byte_identical() {
    let store =
        std::env::temp_dir().join(format!("fetchmech-storecrash-{}.log", std::process::id()));
    let _ = std::fs::remove_file(&store);

    // ---- Phase 1: compute and persist a known set of results. ----
    let server = ServerProc::spawn(&store);
    let mut originals = Vec::new();
    for body in KEYS {
        let (status, resp) = server.http("POST", "/v1/simulate", body);
        assert_eq!(status, 200, "simulate failed: {resp}");
        originals.push(resp);
    }
    // Persistence is write-behind; wait until all four are durable.
    let deadline = Instant::now() + Duration::from_secs(60);
    loop {
        if metric_u64(&server.metrics(), "store", "persisted") >= KEYS.len() as u64 {
            break;
        }
        assert!(Instant::now() < deadline, "results never became durable");
        std::thread::sleep(Duration::from_millis(20));
    }

    // ---- Phase 2: SIGKILL with a request in flight. ----
    // Fire one more simulation and kill the process while it runs; that
    // key gets no durability promise and must simply not corrupt the log.
    let addr = server.addr.clone();
    let straggler = std::thread::spawn(move || {
        // The connection dies with the server; any error is expected.
        let _ = std::panic::catch_unwind(|| {
            http(
                &addr,
                "POST",
                "/v1/simulate",
                "{\"bench\": \"eqntott\", \"scheme\": \"banked\", \"insts\": 1400}",
            )
        });
    });
    std::thread::sleep(Duration::from_millis(30));
    server.sigkill();
    straggler.join().expect("straggler thread");

    // ---- Phase 3: simulate the torn tail a mid-record crash leaves. ----
    // A valid header promising more payload than exists: recovery must
    // truncate exactly this suffix and keep every whole record before it.
    let intact_len = std::fs::metadata(&store)
        .expect("store survives SIGKILL")
        .len();
    assert!(intact_len > 0, "log is empty after persistence");
    let torn: Vec<u8> = 0x464d_5331u32 // record magic, little-endian
        .to_le_bytes()
        .into_iter()
        .chain(40u32.to_le_bytes()) // key_len: promises 40 bytes...
        .chain(400u32.to_le_bytes()) // body_len: ...plus 400 more
        .chain(0u64.to_le_bytes()) // checksum (never reached)
        .chain(*b"torn") // ...but only 4 bytes arrive
        .collect();
    {
        use std::io::Write as _;
        let mut file = std::fs::OpenOptions::new()
            .append(true)
            .open(&store)
            .expect("append torn tail");
        file.write_all(&torn).expect("write torn tail");
        file.sync_data().expect("sync torn tail");
    }

    // ---- Phase 4: restart and verify recovery. ----
    let recover_start = Instant::now();
    let server = ServerProc::spawn(&store);
    let recover_ms = recover_start.elapsed().as_millis() as u64;
    for (body, original) in KEYS.iter().zip(&originals) {
        let (status, resp) = server.http("POST", "/v1/simulate", body);
        assert_eq!(status, 200);
        assert_eq!(
            &resp, original,
            "durable result must replay byte-identical after crash"
        );
    }
    let m = server.metrics();
    let recovered = metric_u64(&m, "store", "records_recovered");
    let truncated = metric_u64(&m, "store", "bytes_truncated");
    let hits = metric_u64(&m, "store", "hits");
    assert!(
        recovered >= KEYS.len() as u64,
        "all durable records recovered (got {recovered})"
    );
    assert_eq!(
        truncated,
        torn.len() as u64,
        "recovery truncates exactly the torn suffix"
    );
    assert!(hits >= KEYS.len() as u64, "replays are store hits");
    assert_eq!(
        metric_u64(&m, "jobs", "enqueued"),
        0,
        "crash recovery must not recompute durable results"
    );
    assert_eq!(
        std::fs::metadata(&store).expect("store metadata").len(),
        intact_len,
        "the log is truncated back to the durable prefix"
    );

    // ---- Phase 5: graceful SIGTERM still drains cleanly. ----
    let tail = server.sigterm_and_wait();
    assert!(
        tail.contains("drained, bye"),
        "graceful shutdown must drain: {tail}"
    );

    let report = Value::object([
        ("durable_keys", Value::Uint(KEYS.len() as u64)),
        ("records_recovered", Value::Uint(recovered)),
        ("bytes_truncated", Value::Uint(truncated)),
        ("store_hits_on_replay", Value::Uint(hits)),
        ("replay_jobs_enqueued", Value::Uint(0)),
        ("recover_ms", Value::Uint(recover_ms)),
    ]);
    std::fs::write("BENCH_PR7.json", format!("{}\n", report.pretty()))
        .expect("write BENCH_PR7.json");
    let _ = std::fs::remove_file(&store);
}
