//! Cross-crate integration tests: full workload → layout → trace → fetch →
//! pipeline runs, checking global invariants the unit tests cannot see.

use fetchmech::isa::{Layout, LayoutOptions, OpClass};
use fetchmech::pipeline::MachineModel;
use fetchmech::workloads::{suite, InputId};
use fetchmech::{simulate, SchemeKind};

fn run(name: &str, machine: &MachineModel, scheme: SchemeKind, n: u64) -> fetchmech::SimResult {
    let w = suite::benchmark(name).expect("known benchmark");
    let layout =
        Layout::natural(&w.program, LayoutOptions::new(machine.block_bytes)).expect("layout");
    let trace: Vec<_> = w.executor(&layout, InputId::TEST, n).collect();
    simulate(machine, scheme, trace)
}

#[test]
fn every_instruction_retires_on_every_machine_and_scheme() {
    for machine in MachineModel::paper_models() {
        for scheme in SchemeKind::ALL {
            let r = run("compress", &machine, scheme, 10_000);
            assert_eq!(
                r.retired, 10_000,
                "{} {}: {} retired",
                machine.name, scheme, r.retired
            );
            assert!(r.ipc() > 0.0);
            assert!(r.ipc() <= f64::from(machine.issue_rate));
        }
    }
}

#[test]
fn simulation_is_bit_reproducible() {
    let machine = MachineModel::p18();
    let a = run("li", &machine, SchemeKind::CollapsingBuffer, 15_000);
    let b = run("li", &machine, SchemeKind::CollapsingBuffer, 15_000);
    assert_eq!(a.cycles, b.cycles);
    assert_eq!(a.delivered, b.delivered);
    assert_eq!(a.fetch.mispredicts, b.fetch.mispredicts);
    assert_eq!(a.icache, b.icache);
}

#[test]
fn eir_bounds_ipc_and_issue_rate() {
    for machine in MachineModel::paper_models() {
        for scheme in [
            SchemeKind::Sequential,
            SchemeKind::CollapsingBuffer,
            SchemeKind::Perfect,
        ] {
            let r = run("espresso", &machine, scheme, 20_000);
            assert!(r.eir() >= r.ipc() - 1e-9, "{} {}", machine.name, scheme);
            assert!(
                r.eir() <= f64::from(machine.issue_rate) + 1e-9,
                "{} {}: EIR {}",
                machine.name,
                scheme,
                r.eir()
            );
        }
    }
}

#[test]
fn collapsing_buffer_only_collapses_when_intra_block_branches_exist() {
    let machine = MachineModel::p112();
    // nasa7 has essentially no intra-block branches; eqntott has many.
    let nasa = run("nasa7", &machine, SchemeKind::CollapsingBuffer, 20_000);
    let eqn = run("eqntott", &machine, SchemeKind::CollapsingBuffer, 20_000);
    assert!(
        eqn.fetch.collapsed > 20 * nasa.fetch.collapsed.max(1),
        "eqntott collapsed {} vs nasa7 {}",
        eqn.fetch.collapsed,
        nasa.fetch.collapsed
    );
}

#[test]
fn fp_code_is_less_fetch_limited_than_int_at_p14() {
    // The paper: "the loop-intensive floating-point benchmarks exhibit
    // regular access patterns, reducing the need for better fetch
    // mechanisms" (on P14).
    let machine = MachineModel::p14();
    let gap = |name| {
        let seq = run(name, &machine, SchemeKind::Sequential, 20_000).ipc();
        let per = run(name, &machine, SchemeKind::Perfect, 20_000).ipc();
        per / seq
    };
    let int_gap = gap("eqntott");
    let fp_gap = gap("tomcatv");
    assert!(
        fp_gap < int_gap,
        "fp gap {fp_gap} should be smaller than int gap {int_gap}"
    );
}

#[test]
fn mispredicts_match_between_fetch_and_trace() {
    // Every fetched control transfer appears exactly once; the mispredict
    // count can never exceed the number of dynamic control transfers.
    let machine = MachineModel::p14();
    let w = suite::benchmark("sc").expect("known");
    let layout =
        Layout::natural(&w.program, LayoutOptions::new(machine.block_bytes)).expect("layout");
    let trace: Vec<_> = w.executor(&layout, InputId::TEST, 20_000).collect();
    let controls = trace.iter().filter(|i| i.ctrl.is_some()).count() as u64;
    let r = simulate(&machine, SchemeKind::BankedSequential, trace);
    assert_eq!(r.fetch.predicted_controls, controls);
    assert!(r.fetch.mispredicts <= controls);
    // The BTB must actually learn: a warm 1024-entry BTB on a program this
    // small should predict most transfers.
    assert!(
        r.fetch.mispredict_rate() < 0.35,
        "mispredict rate {}",
        r.fetch.mispredict_rate()
    );
}

#[test]
fn padding_layouts_simulate_correctly() {
    use fetchmech::compiler::layout_pad_all;
    let machine = MachineModel::p14();
    let w = suite::benchmark("flex").expect("known");
    let layout = layout_pad_all(&w.program, machine.block_bytes).expect("layout");
    let trace: Vec<_> = w.executor(&layout, InputId::TEST, 20_000).collect();
    let nops = trace.iter().filter(|i| i.op == OpClass::Nop).count() as u64;
    assert!(nops > 0, "pad-all trace must execute nops");
    let r = simulate(&machine, SchemeKind::Sequential, trace);
    // All non-nop instructions retire; nops are dropped at dispatch but
    // still accounted for.
    assert_eq!(r.retired, 20_000);
    assert_eq!(r.retired_useful, 20_000 - nops);
}

#[test]
fn return_address_stack_fixes_return_mispredicts() {
    // `li` is the call-heavy benchmark; a 16-entry RAS should predict its
    // returns nearly perfectly and cut overall mispredicts.
    let base = MachineModel::p14();
    let with_ras = base.clone().with_ras(16);
    let without = run("li", &base, SchemeKind::CollapsingBuffer, 30_000);
    let with = {
        let w = suite::benchmark("li").expect("known benchmark");
        let layout =
            Layout::natural(&w.program, LayoutOptions::new(with_ras.block_bytes)).expect("layout");
        let trace: Vec<_> = w.executor(&layout, InputId::TEST, 30_000).collect();
        simulate(&with_ras, SchemeKind::CollapsingBuffer, trace)
    };
    assert!(with.fetch.ras_predictions > 0, "RAS must be exercised");
    assert!(
        with.fetch.ras_correct as f64 >= 0.95 * with.fetch.ras_predictions as f64,
        "RAS accuracy {}/{}",
        with.fetch.ras_correct,
        with.fetch.ras_predictions
    );
    assert!(
        with.fetch.mispredicts < without.fetch.mispredicts,
        "RAS should remove return mispredicts: {} vs {}",
        with.fetch.mispredicts,
        without.fetch.mispredicts
    );
    assert!(with.ipc() >= without.ipc(), "RAS must not hurt IPC");
}
