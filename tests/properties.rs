//! Property-based tests (proptest) over the core data structures and the
//! end-to-end invariants of randomly-generated workloads.

use proptest::prelude::*;

use fetchmech::isa::layout::{CtrlAttr, LaidInst};
use fetchmech::isa::{
    decode, encode, Addr, BlockId, BranchId, Layout, LayoutOptions, OpClass, Reg,
};
use fetchmech::pipeline::MachineModel;
use fetchmech::workloads::{InputId, Workload, WorkloadSpec};
use fetchmech::{simulate, SchemeKind};

// ---- encoding ------------------------------------------------------------

fn arb_reg() -> impl Strategy<Value = Reg> {
    (0usize..64).prop_map(Reg::from_file_index)
}

fn arb_body_op() -> impl Strategy<Value = OpClass> {
    prop_oneof![
        Just(OpClass::IntAlu),
        Just(OpClass::IntMul),
        Just(OpClass::FpAdd),
        Just(OpClass::FpMul),
        Just(OpClass::Load),
        Just(OpClass::Store),
        Just(OpClass::Nop),
    ]
}

prop_compose! {
    fn arb_body_inst()(
        op in arb_body_op(),
        dest in proptest::option::of(arb_reg()),
        s0 in proptest::option::of(arb_reg()),
        s1 in proptest::option::of(arb_reg()),
        imm in -32i8..=31,
        word in 0u64..(1 << 20),
    ) -> LaidInst {
        let (dest, imm) = if op == OpClass::Nop { (None, 0) } else { (dest, imm) };
        let srcs = if op == OpClass::Nop { [None, None] } else { [s0, s1] };
        LaidInst {
            addr: Addr::from_word_index(word),
            op,
            dest,
            srcs,
            imm,
            ctrl: None,
            block: BlockId(0),
        }
    }
}

proptest! {
    #[test]
    fn body_encoding_roundtrips(inst in arb_body_inst()) {
        let word = encode(&inst).expect("encodable");
        let d = decode(word, inst.addr).expect("decodable");
        prop_assert_eq!(d.op, inst.op);
        if inst.op != OpClass::Nop {
            prop_assert_eq!(d.dest, inst.dest);
            prop_assert_eq!(d.srcs, inst.srcs);
            prop_assert_eq!(d.imm, inst.imm);
        }
    }

    #[test]
    fn branch_encoding_roundtrips(
        word in 4096u64..(1 << 20),
        disp in -4096i64..=4095,
        s0 in proptest::option::of(arb_reg()),
    ) {
        let addr = Addr::from_word_index(word);
        let target = Addr::from_word_index((word as i64 + disp) as u64);
        let inst = LaidInst {
            addr,
            op: OpClass::CondBranch,
            dest: None,
            srcs: [s0, None],
            imm: 0,
            ctrl: Some(CtrlAttr { branch_id: Some(BranchId(0)), inverted: false, target: Some(target) }),
            block: BlockId(0),
        };
        let d = decode(encode(&inst).expect("encodable"), addr).expect("decodable");
        prop_assert_eq!(d.op, OpClass::CondBranch);
        prop_assert_eq!(d.target, Some(target));
        prop_assert_eq!(d.srcs[0], s0);
    }
}

// ---- json ----------------------------------------------------------------

use fetchmech::json::{self, Value};

/// Strings over the full scalar-value range, including control characters
/// (exercises `\uXXXX` escaping) and astral-plane code points.
fn arb_json_string() -> BoxedStrategy<String> {
    proptest::collection::vec(0u32..0x11_0000, 0..6)
        .prop_map(|cs| cs.into_iter().filter_map(char::from_u32).collect())
        .boxed()
}

fn arb_json_leaf() -> BoxedStrategy<Value> {
    prop_oneof![
        Just(Value::Null),
        (0u32..2).prop_map(|b| Value::Bool(b == 1)).boxed(),
        (0u64..u64::MAX).prop_map(Value::Uint).boxed(),
        (i64::MIN..0i64).prop_map(Value::Int).boxed(),
        (-1e300f64..1e300).prop_map(Value::Num).boxed(),
        arb_json_string().prop_map(Value::Str).boxed(),
    ]
    .boxed()
}

/// Bounded-depth recursive JSON documents. Object keys get an index suffix
/// so they are always distinct — the parser now rejects duplicates.
fn arb_json(depth: u32) -> BoxedStrategy<Value> {
    if depth == 0 {
        return arb_json_leaf();
    }
    let inner = arb_json(depth - 1);
    prop_oneof![
        arb_json_leaf(),
        proptest::collection::vec(arb_json(depth - 1), 0..4)
            .prop_map(Value::Array)
            .boxed(),
        (arb_json_string(), proptest::collection::vec(inner, 0..4))
            .prop_map(|(prefix, vals)| {
                Value::Object(
                    vals.into_iter()
                        .enumerate()
                        .map(|(i, v)| (format!("{prefix}{i}"), v))
                        .collect(),
                )
            })
            .boxed(),
    ]
    .boxed()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// `render ∘ parse` is a fixed point on rendered documents. (Value-level
    /// equality would be too strong: `Num(2.0)` renders as `2`, which
    /// reparses as `Uint(2)` — same document, different tag.)
    #[test]
    fn json_render_parse_is_a_fixed_point(v in arb_json(3)) {
        let rendered = v.render();
        let reparsed = json::parse(&rendered).expect("rendered JSON must reparse");
        prop_assert_eq!(reparsed.render(), rendered.clone());
        let pretty = v.pretty();
        let from_pretty = json::parse(&pretty).expect("pretty JSON must reparse");
        prop_assert_eq!(from_pretty.render(), rendered);
    }

    /// The parser never panics and never loops on arbitrary short inputs —
    /// it either produces a value or an error with an in-bounds position.
    #[test]
    fn json_parse_is_total_on_arbitrary_bytes(s in arb_json_string()) {
        match json::parse(&s) {
            Ok(v) => {
                let r = v.render();
                prop_assert_eq!(json::parse(&r).expect("reparse").render(), r);
            }
            Err(e) => prop_assert!(e.pos <= s.len()),
        }
    }
}

// ---- random workloads ----------------------------------------------------

fn arb_spec() -> impl Strategy<Value = WorkloadSpec> {
    (
        1u64..5000,
        1usize..5,
        0.0f64..0.4,
        0.0f64..0.3,
        1usize..8,
        2usize..8,
        1.5f64..40.0,
    )
        .prop_map(|(seed, funcs, hammock, loop_p, hlen, blen, trips)| {
            let mut s = WorkloadSpec::base_int("prop", seed);
            s.funcs = funcs;
            s.segments_per_func = (2, 8);
            s.hammock_prob = hammock;
            s.loop_prob = loop_p;
            s.hammock_len = (1, hlen);
            s.block_len = (1, blen);
            s.mean_trips = trips;
            s
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Any valid spec generates a valid program whose executed trace is
    /// address-linked and stays within the laid-out image.
    #[test]
    fn generated_traces_are_linked_and_mapped(spec in arb_spec()) {
        let w = Workload::generate(spec);
        let layout = Layout::natural(&w.program, LayoutOptions::new(16)).expect("layout");
        let trace: Vec<_> = w.executor(&layout, InputId::TEST, 3_000).collect();
        for pair in trace.windows(2) {
            prop_assert_eq!(pair[0].next_pc, pair[1].addr);
        }
        for inst in &trace {
            prop_assert!(layout.index_of(inst.addr).is_some());
        }
    }

    /// Fetch never delivers more than the issue rate, never delivers
    /// out of order, and the pipeline retires everything, on a random
    /// workload under every scheme.
    #[test]
    fn random_workloads_simulate_cleanly(spec in arb_spec()) {
        let w = Workload::generate(spec);
        let machine = MachineModel::p14();
        let layout = Layout::natural(&w.program, LayoutOptions::new(machine.block_bytes))
            .expect("layout");
        for scheme in SchemeKind::ALL {
            let trace: Vec<_> = w.executor(&layout, InputId::TEST, 4_000).collect();
            let r = simulate(&machine, scheme, trace);
            prop_assert_eq!(r.retired, 4_000);
            prop_assert!(r.eir() <= f64::from(machine.issue_rate) + 1e-9);
        }
    }

    /// Reordering preserves semantics on random workloads: the projected
    /// body-instruction stream is unchanged.
    #[test]
    fn reordering_preserves_semantics_on_random_workloads(spec in arb_spec()) {
        use fetchmech::compiler::{reorder, Profile, TraceSelectConfig};
        let w = Workload::generate(spec);
        let profile = Profile::collect(&w, &[InputId(0), InputId(1)], 3_000);
        let r = reorder(&w.program, &profile, &TraceSelectConfig::default());
        let natural = Layout::natural(&w.program, LayoutOptions::new(16)).expect("layout");
        let optimized = r.layout(16).expect("layout");
        let rw = Workload {
            spec: w.spec.clone(),
            program: r.program.clone(),
            behaviors: w.behaviors.clone(),
        };
        let project = |w: &Workload, l: &Layout| -> Vec<_> {
            w.executor(l, InputId::TEST, 3_000)
                .filter(|i| i.ctrl.is_none() && i.op != OpClass::Nop)
                .map(|i| (i.op, i.dest, i.srcs))
                .collect()
        };
        let a = project(&w, &natural);
        let b = project(&rw, &optimized);
        let n = a.len().min(b.len());
        prop_assert_eq!(&a[..n], &b[..n]);
    }

    /// The perfect scheme dominates every hardware scheme's EIR on random
    /// workloads (it is the upper bound by construction). Tolerance note:
    /// during the cold-start prefix, banked/collapsing prefetch the
    /// *predicted-successor* block while perfect prefetches only the next
    /// sequential block, so on branchy code a hardware scheme can edge ahead
    /// by a fraction of a percent until the cache warms; longer traces and a
    /// 1% tolerance absorb that startup artifact.
    #[test]
    fn perfect_is_an_upper_bound(spec in arb_spec()) {
        use fetchmech::sim::measure_eir;
        let w = Workload::generate(spec);
        let machine = MachineModel::p14();
        let layout = Layout::natural(&w.program, LayoutOptions::new(machine.block_bytes))
            .expect("layout");
        let eir = |scheme| {
            let trace: Vec<_> = w.executor(&layout, InputId::TEST, 12_000).collect();
            measure_eir(&machine, scheme, trace).eir()
        };
        let perfect = eir(SchemeKind::Perfect);
        for scheme in SchemeKind::HARDWARE {
            let v = eir(scheme);
            prop_assert!(
                v <= perfect * 1.01 + 0.02,
                "{} EIR {} exceeds perfect {}", scheme, v, perfect
            );
        }
    }
}
