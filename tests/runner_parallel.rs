//! Serial/parallel equivalence of the experiment runner: the same grid run
//! on one worker and on several must produce field-for-field identical
//! results, and the shared workload cache must build each block stream
//! exactly once per process regardless of thread count.

use fetchmech::experiments::{ExpConfig, Fig3, Lab, LayoutVariant};
use fetchmech::pipeline::MachineModel;
use fetchmech::{SchemeKind, SimResult};

fn small_cfg() -> ExpConfig {
    ExpConfig {
        trace_len: 8_000,
        profile_len: 4_000,
    }
}

/// A raw (machine × scheme × benchmark) grid of full simulations, compared
/// as whole `SimResult`s — every counter, not just the headline IPC.
#[test]
fn raw_grid_results_are_identical_serial_and_parallel() {
    let machines = [MachineModel::p14(), MachineModel::p112()];
    let benches = ["compress", "eqntott", "tomcatv"];
    let mut jobs = Vec::new();
    for machine in &machines {
        for scheme in SchemeKind::ALL {
            for bench in benches {
                jobs.push((machine.clone(), scheme, bench));
            }
        }
    }

    let run_all = |threads: usize| -> Vec<SimResult> {
        let lab = Lab::with_threads(small_cfg(), threads);
        lab.runner().run(&jobs, |(machine, scheme, bench)| {
            lab.run(machine, *scheme, bench, LayoutVariant::Natural)
        })
    };

    let serial = run_all(1);
    let parallel = run_all(4);
    assert_eq!(serial.len(), jobs.len());
    for (i, (a, b)) in serial.iter().zip(&parallel).enumerate() {
        assert_eq!(
            a, b,
            "job {i} ({:?}) diverged across thread counts",
            jobs[i]
        );
    }
}

/// A full experiment driver end to end: Figure 3 on one worker versus four.
#[test]
fn fig3_driver_is_identical_serial_and_parallel() {
    let serial = Fig3::run(&Lab::with_threads(small_cfg(), 1));
    let parallel = Fig3::run(&Lab::with_threads(small_cfg(), 4));
    assert_eq!(serial, parallel);
}

/// Re-running a driver on the same lab builds no new block streams (and, in
/// debug builds, regenerates no oracle traces): every run after the first is
/// served from the shared cache.
#[test]
fn second_driver_run_generates_no_new_traces() {
    let lab = Lab::with_threads(small_cfg(), 2);
    let first = Fig3::run(&lab);
    let after_first = lab.cache_stats();
    assert!(after_first.stream_builds > 0);

    let second = Fig3::run(&lab);
    let after_second = lab.cache_stats();
    assert_eq!(first, second, "driver must be deterministic on one lab");
    assert_eq!(
        after_second.stream_builds, after_first.stream_builds,
        "second run must be all stream-cache hits"
    );
    assert!(after_second.stream_hits > after_first.stream_hits);
    assert_eq!(
        after_second.trace_generations, after_first.trace_generations,
        "second run must regenerate no per-instruction traces"
    );
    assert_eq!(
        after_second.layout_builds, after_first.layout_builds,
        "layouts must also be reused"
    );
}
