#!/usr/bin/env bash
# Hermetic CI gate: formatting, lints, tests. Runs fully offline — the
# workspace has no registry dependencies (criterion lives in the excluded
# crates/bench package; proptest is vendored under vendor/proptest).
#
# Usage: ci/check.sh [--no-lint]   (skip clippy, e.g. when it is not installed)
set -euo pipefail
cd "$(dirname "$0")/.."

run_clippy=1
if [ "${1:-}" = "--no-lint" ]; then
    run_clippy=0
fi

echo "==> cargo fmt --check"
cargo fmt --all --check

if [ "$run_clippy" = 1 ]; then
    echo "==> cargo clippy --workspace --all-targets -- -D warnings"
    cargo clippy --workspace --all-targets -- -D warnings
fi

echo "==> cargo build --workspace"
cargo build --workspace

echo "==> cargo test --workspace -q"
cargo test --workspace -q

echo "==> fetchmech-lint (full suite)"
cargo run -q -p fetchmech-repro --bin fetchmech-lint -- --deny-warnings

echo "==> fetchmech-lint sanitize (cycle-level invariants, short traces)"
cargo run -q -p fetchmech-repro --bin fetchmech-lint -- sanitize --short

echo "==> timing smoke: serial vs parallel runner (writes BENCH_PR3.json)"
cargo run --release -q -p fetchmech-repro --example runner_bench

echo "CI checks passed."
