#!/usr/bin/env bash
# Hermetic CI gate: formatting, lints, tests. Runs fully offline — the
# workspace has no registry dependencies (criterion lives in the excluded
# crates/bench package; proptest is vendored under vendor/proptest).
#
# Usage: ci/check.sh [--no-lint]   (skip clippy, e.g. when it is not installed)
set -euo pipefail
cd "$(dirname "$0")/.."

run_clippy=1
if [ "${1:-}" = "--no-lint" ]; then
    run_clippy=0
fi

echo "==> cargo fmt --check"
cargo fmt --all --check

if [ "$run_clippy" = 1 ]; then
    echo "==> cargo clippy --workspace --all-targets -- -D warnings"
    cargo clippy --workspace --all-targets -- -D warnings
fi

echo "==> cargo build --workspace"
cargo build --workspace

echo "==> cargo test --workspace -q"
cargo test --workspace -q

echo "==> fetchmech-lint (full suite)"
cargo run -q -p fetchmech-repro --bin fetchmech-lint -- --deny-warnings

echo "==> fetchmech-lint sanitize (cycle-level invariants, short traces)"
cargo run -q -p fetchmech-repro --bin fetchmech-lint -- sanitize --short

echo "==> fetchmech-lint analyze (dataflow + static fetch geometry, full suite)"
cargo run -q -p fetchmech-repro --bin fetchmech-lint -- analyze --insts 4000 --json >/dev/null

echo "==> fetchmech-lint opt (pass pipeline + translation validation, full suite)"
cargo run -q -p fetchmech-repro --bin fetchmech-lint -- opt --verify --insts 4000 --json >/dev/null
# The validator must also still CATCH a broken pass: the self-test corrupts
# a pipeline result in-process and is required to exit nonzero.
if cargo run -q -p fetchmech-repro --bin fetchmech-lint -- opt --self-test >/dev/null 2>&1; then
    echo "opt --self-test failed to flag the corrupted pipeline" >&2
    exit 1
fi

echo "==> fetchmech-lint frontend (parse -> lower -> lint -> opt --verify -> simulate, all examples)"
cargo run -q -p fetchmech-repro --bin fetchmech-lint -- frontend --verify --insts 4000 \
    examples/programs/*
# The frontend must also still REJECT a bad program with exit 1.
bad_prog="$(mktemp -d)/bad.bril.json"
printf '{"functions": []}' >"$bad_prog"
if cargo run -q -p fetchmech-repro --bin fetchmech-lint -- frontend "$bad_prog" >/dev/null 2>&1; then
    echo "frontend failed to flag an invalid program" >&2
    exit 1
fi
rm -f "$bad_prog"

echo "==> cargo doc --workspace --no-deps (warnings fatal)"
RUSTDOCFLAGS="-D warnings" cargo doc --workspace --no-deps -q

echo "==> perf gate: block-stream path vs per-instruction path (writes BENCH_PR8.json)"
# Wall-clock floor with generous tolerance below the ~2.5x measured on the
# single-core reference box (see EXPERIMENTS.md for the measured numbers).
FETCHMECH_PERF_GATE=2.0 cargo run --release -q -p fetchmech-repro --example runner_bench
# Instruction-count-stable gate: the deterministic work counters in the
# report (simulated cycles, retired/delivered instructions, stream records)
# must match ci/expected_work.json exactly. Any drift means the simulation
# or the stream representation changed behavior — update the expected file
# only as part of a deliberate, reviewed change.
for key in grid_jobs trace_len stream_insts stream_records stream_templates \
           total_cycles total_retired total_delivered total_eir_cycles; do
    want="$(sed -n "s/^ *\"$key\": \([0-9][0-9]*\).*/\1/p" ci/expected_work.json)"
    got="$(sed -n "s/^ *\"$key\": \([0-9][0-9]*\).*/\1/p" BENCH_PR8.json)"
    if [ -z "$want" ] || [ "$want" != "$got" ]; then
        echo "work counter $key drifted: expected ${want:-<missing>}, got ${got:-<missing>}" >&2
        echo "(update ci/expected_work.json only with a deliberate behavior change)" >&2
        exit 1
    fi
done
echo "work counters stable ($(sed -n 's/^ *"total_cycles": \([0-9]*\).*/\1/p' BENCH_PR8.json) simulated cycles)"

echo "==> service smoke: boot fetchmech-serve, drive it, drain it (writes BENCH_PR5.json)"
cargo build --release -q -p fetchmech-repro --bin fetchmech-serve --example serve_client
serve_log="$(mktemp)"
target/release/fetchmech-serve --addr 127.0.0.1:0 --quick >"$serve_log" &
serve_pid=$!
trap 'kill "$serve_pid" 2>/dev/null || true' EXIT
# The server prints "fetchmech-serve listening on http://HOST:PORT" once up.
serve_addr=""
for _ in $(seq 1 100); do
    serve_addr="$(sed -n 's#^fetchmech-serve listening on http://##p' "$serve_log")"
    [ -n "$serve_addr" ] && break
    sleep 0.1
done
if [ -z "$serve_addr" ]; then
    echo "fetchmech-serve did not come up; log:" >&2
    cat "$serve_log" >&2
    exit 1
fi
target/release/examples/serve_client "$serve_addr" examples/programs/loopmix.bril.json
kill -TERM "$serve_pid"
wait "$serve_pid"
trap - EXIT
grep -q "drained, bye" "$serve_log" || {
    echo "fetchmech-serve did not drain cleanly; log:" >&2
    cat "$serve_log" >&2
    exit 1
}
rm -f "$serve_log"

echo "==> chaos: seeded fault matrix + kill-and-recover (writes BENCH_PR7.json)"
# The store/fault tests run the full matrix in-process; store_crash spawns
# the real binary, SIGKILLs it mid-operation, and verifies recovery. The
# fixed seed makes every injected-fault schedule replayable.
FETCHMECH_FAULT_SEED=20260808 cargo test --release -q -p fetchmech-repro \
    --test store_faults --test store_crash --test runner_queue
if [ ! -s BENCH_PR7.json ]; then
    echo "chaos stage did not produce BENCH_PR7.json" >&2
    exit 1
fi
echo "chaos stats:"
cat BENCH_PR7.json

echo "CI checks passed."
